//! The pool's core contract: a sweep report is a function of
//! (spec, scale) only. Running the same spec at 1, 2, and 8 threads must
//! produce **byte-identical** serialized reports, because cells merge by
//! job index and carry no schedule- or clock-dependent data.

use pif_lab::json::Json;
use pif_lab::{registry, report, run_spec, RunOptions, Scale};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn assert_thread_invariant(spec: &pif_lab::SweepSpec) {
    let scale = Scale::tiny();
    let opts = |threads| RunOptions::new().scale(scale).threads(threads).smoke(true);
    let baseline = run_spec(spec, &opts(THREAD_COUNTS[0])).to_json().unwrap();
    for &threads in &THREAD_COUNTS[1..] {
        let other = run_spec(spec, &opts(threads)).to_json().unwrap();
        assert_eq!(
            baseline, other,
            "{}: report at {threads} threads differs from 1 thread",
            spec.name
        );
    }
    let parsed = Json::parse(&baseline).expect("report parses");
    report::validate_report(&parsed).expect("report validates");
    report::check_reports(&parsed, &parsed, None).expect("self-check passes");
}

#[test]
fn analysis_sweep_is_thread_invariant() {
    // fig9-history: workloads x history-capacity axis through PifAnalyzer.
    assert_thread_invariant(&registry::fig9_history());
}

#[test]
fn engine_sweep_is_thread_invariant() {
    // fig10: workloads x prefetchers through the full engine, including
    // the derived uipc_speedup_vs_none merge pass.
    assert_thread_invariant(&registry::fig10());
}

#[test]
fn static_sweep_is_thread_invariant() {
    assert_thread_invariant(&registry::table1());
}

#[test]
fn sampled_sweep_is_thread_invariant() {
    // fig-sampling: seeded-random sample windows whose seeds derive from
    // the job index, so the sampled grid must also be byte-identical
    // across thread counts (the ISSUE's acceptance criterion).
    assert_thread_invariant(&registry::fig_sampling());
}

#[test]
fn check_rejects_reports_from_different_scales() {
    let spec = registry::table1();
    let tiny = Json::parse(
        &run_spec(
            &spec,
            &RunOptions::new()
                .scale(Scale::tiny())
                .threads(2)
                .smoke(true),
        )
        .to_json()
        .unwrap(),
    )
    .unwrap();
    let quick = Json::parse(
        &run_spec(
            &spec,
            &RunOptions::new()
                .scale(Scale::quick())
                .threads(2)
                .smoke(true),
        )
        .to_json()
        .unwrap(),
    )
    .unwrap();
    let violations = report::check_reports(&tiny, &quick, None).unwrap_err();
    assert!(
        violations.iter().any(|v| v.contains("scale")),
        "{violations:?}"
    );
}

#[test]
fn every_committed_spec_serializes_to_a_valid_report() {
    // One pass over the whole registry at tiny scale: every spec must
    // produce a parseable, schema-valid, self-consistent report.
    for spec in registry::all_specs() {
        let report_ = run_spec(
            &spec,
            &RunOptions::new()
                .scale(Scale::tiny())
                .threads(4)
                .smoke(true),
        );
        assert_eq!(report_.cells.len(), spec.grid_len(), "{}", spec.name);
        let parsed = Json::parse(&report_.to_json().expect("finite metrics"))
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        report::validate_report(&parsed).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
    }
}
