//! Behavior of armed failpoints. Compiled only with `fail-inject`
//! (`cargo test -p pif-fail --features fail-inject`).

#![cfg(feature = "fail-inject")]

use std::sync::Mutex;
use std::time::{Duration, Instant};

use pif_fail::{FailAction, FailPlan, SiteRule};

/// The active plan is process-global; tests that install one must not
/// overlap.
static SERIAL: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    match SERIAL.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

fn site_with_error() -> Result<(), String> {
    pif_fail::fail_point!("inject.site", |e: pif_fail::FailError| Err(e.to_string()));
    Ok(())
}

fn site_plain() {
    pif_fail::fail_point!("inject.plain");
}

#[test]
fn error_rule_fires_through_the_macro() {
    let _serial = lock();
    pif_fail::install(&FailPlan::new(7).site("inject.site", SiteRule::always(FailAction::Error)));
    let err = site_with_error().unwrap_err();
    assert!(
        err.contains("inject.site"),
        "error should name the site: {err}"
    );
    let stats = pif_fail::stats();
    assert_eq!(stats.len(), 1);
    assert_eq!((stats[0].evals, stats[0].fires), (1, 1));
    pif_fail::clear();
    assert!(site_with_error().is_ok(), "cleared plan must disarm");
}

#[test]
fn unlisted_sites_never_fire() {
    let _serial = lock();
    pif_fail::install(&FailPlan::new(7).site("other.site", SiteRule::always(FailAction::Error)));
    assert!(site_with_error().is_ok());
    site_plain();
    pif_fail::clear();
}

#[test]
fn max_fires_caps_the_site() {
    let _serial = lock();
    pif_fail::install(&FailPlan::new(7).site(
        "inject.site",
        SiteRule {
            action: FailAction::Error,
            probability: 1.0,
            max_fires: Some(2),
        },
    ));
    assert!(site_with_error().is_err());
    assert!(site_with_error().is_err());
    assert!(site_with_error().is_ok(), "third eval must not fire");
    let stats = pif_fail::stats();
    assert_eq!((stats[0].evals, stats[0].fires), (3, 2));
    pif_fail::clear();
}

#[test]
fn probability_is_seeded_and_deterministic() {
    let _serial = lock();
    let plan = FailPlan::new(42).site(
        "inject.site",
        SiteRule {
            action: FailAction::Error,
            probability: 0.5,
            max_fires: None,
        },
    );
    let run = |plan: &FailPlan| -> Vec<bool> {
        pif_fail::install(plan);
        let fired: Vec<bool> = (0..64).map(|_| site_with_error().is_err()).collect();
        pif_fail::clear();
        fired
    };
    let a = run(&plan);
    let b = run(&plan);
    assert_eq!(a, b, "same seed must reproduce the same firing sequence");
    let fires = a.iter().filter(|f| **f).count();
    assert!(
        (8..=56).contains(&fires),
        "p=0.5 over 64 draws fired {fires} times"
    );
    let c = run(&FailPlan {
        seed: 43,
        ..plan.clone()
    });
    assert_ne!(a, c, "different seed should change the sequence");
}

#[test]
fn delay_rule_sleeps() {
    let _serial = lock();
    pif_fail::install(&FailPlan::new(7).site(
        "inject.plain",
        SiteRule::always(FailAction::Delay(Duration::from_millis(30))),
    ));
    let start = Instant::now();
    site_plain();
    let elapsed = start.elapsed();
    pif_fail::clear();
    assert!(elapsed >= Duration::from_millis(25), "slept {elapsed:?}");
}

#[test]
fn panic_rule_panics_with_site_name() {
    let _serial = lock();
    pif_fail::install(&FailPlan::new(7).site("inject.plain", SiteRule::always(FailAction::Panic)));
    let caught = std::panic::catch_unwind(site_plain);
    pif_fail::clear();
    let payload = caught.unwrap_err();
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(msg.contains("inject.plain"), "panic message: {msg}");
}

#[test]
fn install_env_round_trips_the_grammar() {
    let _serial = lock();
    // Avoid touching the real process env (std::env::set_var is unsafe
    // in multi-threaded test binaries): exercise the same path via
    // parse + install.
    let plan = FailPlan::parse("seed=9;inject.site=error@1.0#1").expect("grammar should parse");
    pif_fail::install(&plan);
    assert!(site_with_error().is_err());
    assert!(site_with_error().is_ok());
    pif_fail::clear();
}
