//! Proof that failpoints are fully erased in default builds.
//!
//! This test binary is compiled *without* the `fail-inject` feature, so
//! every `fail_point!` in the loop below must expand to an empty block.
//! A counting global allocator (the same idiom as the workspace
//! `zero_alloc` test) asserts the loop performs zero heap allocations,
//! and installing a plan has no effect on control flow because `eval`
//! is never compiled into the call sites.

#![cfg(not(feature = "fail-inject"))]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

/// A tight loop studded with failpoints, shaped like the hot paths that
/// carry them in pif-trace and pif-lab.
#[inline(never)]
fn looped_with_failpoints(n: u64) -> Result<u64, String> {
    let mut acc = 0u64;
    for i in 0..n {
        pif_fail::fail_point!("erased.loop.a");
        acc = acc.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(i);
        pif_fail::fail_point!("erased.loop.b", |e: pif_fail::FailError| Err(e.to_string()));
    }
    Ok(acc)
}

#[test]
fn erased_failpoints_never_allocate() {
    let allocs = allocs_during(|| {
        let acc = looped_with_failpoints(std::hint::black_box(1_000_000)).unwrap();
        std::hint::black_box(acc);
    });
    assert_eq!(
        allocs, 0,
        "default-build failpoints allocated {allocs} times in a hot loop"
    );
}

#[test]
fn erased_failpoints_ignore_installed_plans() {
    // The plan API still works in default builds (plans can be parsed
    // and inspected anywhere), but call sites compiled without
    // `fail-inject` never consult it: an always-error plan changes
    // nothing.
    let plan = pif_fail::FailPlan::new(1)
        .site(
            "erased.loop.b",
            pif_fail::SiteRule::always(pif_fail::FailAction::Error),
        )
        .site(
            "erased.loop.a",
            pif_fail::SiteRule::always(pif_fail::FailAction::Panic),
        );
    pif_fail::install(&plan);
    let out = looped_with_failpoints(16);
    // No site was ever evaluated.
    let evals: u64 = pif_fail::stats().iter().map(|s| s.evals).sum();
    pif_fail::clear();
    assert!(out.is_ok(), "erased failpoint fired: {out:?}");
    assert_eq!(evals, 0);
}
