//! Compile-time-erasable failpoints for fault-injection testing.
//!
//! A *failpoint* is a named site in production code where a test can
//! inject a fault: an error return, a panic, or a delay. Sites are
//! declared with [`fail_point!`]:
//!
//! ```ignore
//! pif_fail::fail_point!("cache.store.write", |e: pif_fail::FailError| Err(e.to_string()));
//! ```
//!
//! Without the `fail-inject` feature the macro expands to an empty
//! block: no code is generated, the site-name string literal never
//! reaches the binary, and the call site costs nothing (CI greps a
//! release binary to prove it). With `fail-inject` enabled, each site
//! consults the installed [`FailPlan`].
//!
//! # Plans
//!
//! A [`FailPlan`] maps site names to a [`SiteRule`]: an action
//! ([`FailAction`]), a firing probability, and an optional fire cap.
//! Plans are fully deterministic: every site draws from its own
//! SplitMix64 stream seeded by `plan.seed ^ fnv1a(site)`, so the
//! decision sequence at one site does not depend on how other sites
//! interleave with it. Install a plan from code with [`install`], or
//! from the `PIF_FAIL` environment variable with [`install_env`]:
//!
//! ```text
//! PIF_FAIL="seed=42;cache.store.write=error@0.5;service.job.run=delay(25)@0.3;service.worker.panic=panic#2"
//! ```
//!
//! Grammar: `seed=N` plus `site=action[@probability][#max_fires]`
//! entries separated by `;`. Actions are `error`, `panic`,
//! `delay(MILLIS)`, and `off`. Probability defaults to `1.0`;
//! `#max_fires` caps the number of times the site fires.
//!
//! The plan API ([`FailPlan::parse`], [`install`], [`stats`], …) is
//! compiled unconditionally so plans can be parsed and inspected from
//! tests in any build; only the *evaluation at call sites* is gated by
//! `fail-inject`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// What an armed failpoint does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// Return a [`FailError`] from the site (via the two-argument form
    /// of [`fail_point!`]); one-argument sites ignore `Error` rules.
    Error,
    /// Panic at the site with a message naming it.
    Panic,
    /// Sleep for the given duration, then continue normally.
    Delay(Duration),
    /// Never fire. Useful to mask a site out of a broad plan.
    Off,
}

/// The injected error produced by an [`FailAction::Error`] rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailError {
    /// Name of the site that fired.
    pub site: String,
}

impl fmt::Display for FailError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "injected fault at failpoint `{}`", self.site)
    }
}

impl std::error::Error for FailError {}

/// Per-site rule in a [`FailPlan`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiteRule {
    /// Action taken when the site fires.
    pub action: FailAction,
    /// Probability in `[0.0, 1.0]` that an evaluation fires.
    pub probability: f64,
    /// Cap on total fires at this site; `None` means unlimited.
    pub max_fires: Option<u64>,
}

impl SiteRule {
    /// Rule that always fires with `action`.
    pub fn always(action: FailAction) -> Self {
        SiteRule {
            action,
            probability: 1.0,
            max_fires: None,
        }
    }
}

/// A deterministic, seeded fault-injection plan.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FailPlan {
    /// Base seed; each site derives an independent stream from it.
    pub seed: u64,
    /// Rules keyed by site name (sorted for stable iteration).
    pub sites: BTreeMap<String, SiteRule>,
}

impl FailPlan {
    /// Empty plan with the given seed.
    pub fn new(seed: u64) -> Self {
        FailPlan {
            seed,
            sites: BTreeMap::new(),
        }
    }

    /// Adds a rule for `site`, replacing any existing one.
    pub fn site(mut self, site: &str, rule: SiteRule) -> Self {
        self.sites.insert(site.to_string(), rule);
        self
    }

    /// Parses the `PIF_FAIL` grammar (see crate docs).
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = FailPlan::default();
        for entry in spec.split(';') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (key, value) = entry
                .split_once('=')
                .ok_or_else(|| format!("pif-fail: entry `{entry}` is not `key=value`"))?;
            let (key, value) = (key.trim(), value.trim());
            if key == "seed" {
                plan.seed = value
                    .parse::<u64>()
                    .map_err(|_| format!("pif-fail: bad seed `{value}`"))?;
                continue;
            }
            plan.sites.insert(key.to_string(), parse_rule(value)?);
        }
        Ok(plan)
    }
}

fn parse_rule(spec: &str) -> Result<SiteRule, String> {
    // action[@probability][#max_fires] — split suffixes from the right
    // so `delay(25)@0.3#2` parses cleanly.
    let (rest, max_fires) = match spec.rsplit_once('#') {
        Some((rest, max)) => {
            let max = max
                .trim()
                .parse::<u64>()
                .map_err(|_| format!("pif-fail: bad max_fires in `{spec}`"))?;
            (rest.trim(), Some(max))
        }
        None => (spec, None),
    };
    let (action, probability) = match rest.rsplit_once('@') {
        Some((action, prob)) => {
            let prob = prob
                .trim()
                .parse::<f64>()
                .map_err(|_| format!("pif-fail: bad probability in `{spec}`"))?;
            if !(0.0..=1.0).contains(&prob) {
                return Err(format!("pif-fail: probability out of [0,1] in `{spec}`"));
            }
            (action.trim(), prob)
        }
        None => (rest.trim(), 1.0),
    };
    let action = if action == "error" {
        FailAction::Error
    } else if action == "panic" {
        FailAction::Panic
    } else if action == "off" {
        FailAction::Off
    } else if let Some(ms) = action
        .strip_prefix("delay(")
        .and_then(|s| s.strip_suffix(')'))
    {
        let ms = ms
            .trim()
            .parse::<u64>()
            .map_err(|_| format!("pif-fail: bad delay millis in `{spec}`"))?;
        FailAction::Delay(Duration::from_millis(ms))
    } else {
        return Err(format!(
            "pif-fail: unknown action `{action}` (expected error|panic|delay(MS)|off)"
        ));
    };
    Ok(SiteRule {
        action,
        probability,
        max_fires,
    })
}

/// Evaluation counters for one site of the active plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteStats {
    /// Site name.
    pub site: String,
    /// Times the site was evaluated (reached while armed).
    pub evals: u64,
    /// Times the site fired its action.
    pub fires: u64,
}

struct ActiveSite {
    rule: SiteRule,
    rng: Mutex<u64>,
    evals: AtomicU64,
    fires: AtomicU64,
}

struct ActivePlan {
    sites: BTreeMap<String, Arc<ActiveSite>>,
}

/// Fast-path switch: `eval` returns immediately unless a plan is
/// installed. Only consulted in `fail-inject` builds.
static ARMED: AtomicBool = AtomicBool::new(false);

fn active() -> &'static Mutex<Option<ActivePlan>> {
    static ACTIVE: OnceLock<Mutex<Option<ActivePlan>>> = OnceLock::new();
    ACTIVE.get_or_init(|| Mutex::new(None))
}

fn lock_active() -> std::sync::MutexGuard<'static, Option<ActivePlan>> {
    // Failpoint state must survive an injected panic crossing a lock
    // scope; recover the guard rather than poisoning everything after
    // the first `panic` action.
    match active().lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(s: &str) -> u64 {
    let mut h = FNV_OFFSET;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Installs `plan` as the process-global active plan, replacing any
/// previous one and resetting all counters.
pub fn install(plan: &FailPlan) {
    let sites = plan
        .sites
        .iter()
        .map(|(name, rule)| {
            (
                name.clone(),
                Arc::new(ActiveSite {
                    rule: *rule,
                    rng: Mutex::new(plan.seed ^ fnv1a(name)),
                    evals: AtomicU64::new(0),
                    fires: AtomicU64::new(0),
                }),
            )
        })
        .collect();
    *lock_active() = Some(ActivePlan { sites });
    ARMED.store(true, Ordering::Release);
}

/// Installs a plan parsed from the `PIF_FAIL` environment variable.
///
/// Returns `Ok(true)` if a plan was installed, `Ok(false)` if the
/// variable is unset or empty, and `Err` on a parse failure.
pub fn install_env() -> Result<bool, String> {
    match std::env::var("PIF_FAIL") {
        Ok(spec) if !spec.trim().is_empty() => {
            install(&FailPlan::parse(&spec)?);
            Ok(true)
        }
        _ => Ok(false),
    }
}

/// Removes the active plan; all sites disarm.
pub fn clear() {
    ARMED.store(false, Ordering::Release);
    *lock_active() = None;
}

/// Snapshot of evaluation counters for every site of the active plan.
pub fn stats() -> Vec<SiteStats> {
    let guard = lock_active();
    let Some(plan) = guard.as_ref() else {
        return Vec::new();
    };
    plan.sites
        .iter()
        .map(|(name, site)| SiteStats {
            site: name.clone(),
            evals: site.evals.load(Ordering::Relaxed),
            fires: site.fires.load(Ordering::Relaxed),
        })
        .collect()
}

fn site_for(name: &str) -> Option<Arc<ActiveSite>> {
    if !ARMED.load(Ordering::Acquire) {
        return None;
    }
    lock_active()
        .as_ref()
        .and_then(|p| p.sites.get(name).cloned())
}

fn try_fire(site: &ActiveSite) -> Option<FailAction> {
    site.evals.fetch_add(1, Ordering::Relaxed);
    if matches!(site.rule.action, FailAction::Off) {
        return None;
    }
    if let Some(max) = site.rule.max_fires {
        if site.fires.load(Ordering::Relaxed) >= max {
            return None;
        }
    }
    if site.rule.probability < 1.0 {
        let roll = {
            let mut state = match site.rng.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            splitmix64(&mut state)
        };
        // 53-bit mantissa draw in [0, 1).
        let unit = (roll >> 11) as f64 / (1u64 << 53) as f64;
        if unit >= site.rule.probability {
            return None;
        }
    }
    site.fires.fetch_add(1, Ordering::Relaxed);
    Some(site.rule.action)
}

/// Evaluates a one-argument failpoint: fires `Panic` and `Delay` rules;
/// `Error` rules are ignored (the site has no error channel).
///
/// Called by [`fail_point!`]; not intended for direct use.
pub fn eval(name: &str) {
    let Some(site) = site_for(name) else { return };
    match try_fire(&site) {
        Some(FailAction::Panic) => panic!("injected panic at failpoint `{name}`"),
        Some(FailAction::Delay(d)) => std::thread::sleep(d),
        _ => {}
    }
}

/// Evaluates a two-argument failpoint: like [`eval`], but an `Error`
/// rule returns `Some(FailError)` for the site to convert into its own
/// error type.
///
/// Called by [`fail_point!`]; not intended for direct use.
pub fn eval_err(name: &str) -> Option<FailError> {
    let site = site_for(name)?;
    match try_fire(&site) {
        Some(FailAction::Error) => Some(FailError {
            site: name.to_string(),
        }),
        Some(FailAction::Panic) => panic!("injected panic at failpoint `{name}`"),
        Some(FailAction::Delay(d)) => {
            std::thread::sleep(d);
            None
        }
        _ => None,
    }
}

/// Declares a named failpoint.
///
/// * `fail_point!("site")` — can inject `panic` and `delay(MS)` faults.
/// * `fail_point!("site", |e: FailError| <expr>)` — additionally
///   supports `error` rules: when one fires, the closure maps the
///   [`FailError`] into the enclosing function's error type and the
///   macro `return`s it.
///
/// Without the `fail-inject` feature both forms expand to an empty
/// block.
#[macro_export]
macro_rules! fail_point {
    ($name:expr) => {{
        #[cfg(feature = "fail-inject")]
        $crate::eval($name);
    }};
    ($name:expr, $on_err:expr) => {{
        #[cfg(feature = "fail-inject")]
        {
            if let Some(err) = $crate::eval_err($name) {
                return ($on_err)(err);
            }
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_grammar() {
        let plan = FailPlan::parse(
            "seed=42;cache.store.write=error@0.5;service.job.run=delay(25)@0.3#2;w=panic;x=off",
        )
        .unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(
            plan.sites["cache.store.write"],
            SiteRule {
                action: FailAction::Error,
                probability: 0.5,
                max_fires: None
            }
        );
        assert_eq!(
            plan.sites["service.job.run"],
            SiteRule {
                action: FailAction::Delay(Duration::from_millis(25)),
                probability: 0.3,
                max_fires: Some(2)
            }
        );
        assert_eq!(plan.sites["w"], SiteRule::always(FailAction::Panic));
        assert_eq!(plan.sites["x"], SiteRule::always(FailAction::Off));
    }

    #[test]
    fn parse_ignores_blank_entries_and_whitespace() {
        let plan = FailPlan::parse(" seed = 7 ;; a = error ; ").unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.sites.len(), 1);
        assert_eq!(plan.sites["a"], SiteRule::always(FailAction::Error));
    }

    #[test]
    fn parse_rejects_bad_specs() {
        for bad in [
            "nokeyvalue",
            "seed=abc",
            "a=explode",
            "a=error@2.0",
            "a=error@x",
            "a=delay(ms)",
            "a=error#x",
        ] {
            assert!(FailPlan::parse(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn empty_spec_parses_to_default() {
        assert_eq!(FailPlan::parse("").unwrap(), FailPlan::default());
    }

    #[test]
    fn site_streams_are_independent_of_seed_and_name() {
        // Same site + seed → same first outputs; different name → different.
        let mut a = 42 ^ fnv1a("cache.store.write");
        let mut b = 42 ^ fnv1a("cache.store.write");
        let mut c = 42 ^ fnv1a("proto.write.frame");
        assert_eq!(splitmix64(&mut a), splitmix64(&mut b));
        assert_ne!(splitmix64(&mut a), splitmix64(&mut c));
    }
}
