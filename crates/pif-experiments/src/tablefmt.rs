//! Plain-text table rendering for experiment output.

use std::fmt;

/// A simple aligned text table.
///
/// # Example
///
/// ```
/// use pif_experiments::Table;
///
/// let mut t = Table::new(vec!["Workload", "Coverage"]);
/// t.row(vec!["OLTP-DB2".into(), "99.5%".into()]);
/// let s = t.to_string();
/// assert!(s.contains("OLTP-DB2"));
/// assert!(s.contains("Coverage"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row(&mut self, mut cells: Vec<String>) {
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate().take(cols) {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:<width$}", width = widths[i])?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["A", "Long header"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["longer".into(), "2".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with("---"));
        // Columns align: "1" and "2" start at the same offset.
        let c1 = lines[2].find('1').unwrap();
        let c2 = lines[3].find('2').unwrap();
        assert_eq!(c1, c2);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(vec!["A", "B", "C"]);
        t.row(vec!["only".into()]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        let _ = t.to_string();
    }
}
