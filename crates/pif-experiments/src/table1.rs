//! Table I: system and application parameters — rendered from the live
//! configuration objects so the printed table always matches what the
//! experiments actually simulate.

use pif_core::PifConfig;
use pif_lab::SweepReport;
use pif_sim::EngineConfig;
use pif_workloads::WorkloadProfile;

use crate::{Scale, Table};

/// Renders the system-parameters half of Table I from an engine config.
pub fn system_table(config: &EngineConfig) -> Table {
    let mut t = Table::new(vec!["Component", "Configuration"]);
    t.row(vec![
        "Processing nodes".into(),
        format!(
            "{}-wide OoO, {}-entry ROB model",
            config.timing.dispatch_width, config.frontend.retire_delay_instrs
        ),
    ]);
    t.row(vec![
        "L1-I cache".into(),
        format!(
            "{}KB, {}-way, 64B blocks, {}-cycle load-to-use",
            config.icache.capacity_bytes / 1024,
            config.icache.ways,
            config.icache.latency_cycles
        ),
    ]);
    t.row(vec![
        "Branch predictor".into(),
        format!(
            "hybrid {}K gshare + {}K bimodal",
            config.frontend.gshare_entries / 1024,
            config.frontend.bimodal_entries / 1024
        ),
    ]);
    t.row(vec![
        "L2 (instruction)".into(),
        format!(
            "{}MB NUCA aggregate, {}-way, {}-cycle hit",
            config.l2.capacity_bytes / (1024 * 1024),
            config.l2.ways,
            config.l2.hit_latency_cycles
        ),
    ]);
    t.row(vec![
        "Main memory".into(),
        format!("{}-cycle access", config.l2.memory_latency_cycles),
    ]);
    t
}

/// Renders the PIF-parameters summary.
pub fn pif_table(config: &PifConfig) -> Table {
    let mut t = Table::new(vec!["PIF structure", "Configuration"]);
    t.row(vec![
        "Spatial region".into(),
        format!(
            "{} preceding + trigger + {} succeeding blocks",
            config.geometry.preceding(),
            config.geometry.succeeding()
        ),
    ]);
    t.row(vec![
        "Temporal compactor".into(),
        format!("{} MRU records", config.temporal_entries),
    ]);
    t.row(vec![
        "History buffer".into(),
        format!("{}K regions per trap level", config.history_capacity / 1024),
    ]);
    t.row(vec![
        "Index table".into(),
        format!(
            "{}K entries, {}-way",
            config.index_entries / 1024,
            config.index_ways
        ),
    ]);
    t.row(vec![
        "Stream address buffers".into(),
        format!(
            "{} SABs x {}-region window",
            config.sab_count, config.sab_window
        ),
    ]);
    t.row(vec![
        "Approx. storage".into(),
        format!("{} KB", config.approx_storage_bytes() / 1024),
    ]);
    t
}

/// Runs the Table I application-parameters grid through the `table1`
/// pif-lab sweep (a static measure: scale-independent).
pub fn run(scale: &Scale) -> SweepReport {
    pif_lab::run_spec(
        &pif_lab::registry::table1(),
        &pif_lab::RunOptions::new().scale(*scale),
    )
}

/// Renders the application-parameters half of Table I from a `table1`
/// sweep report.
pub fn workload_table_from(report: &SweepReport) -> Table {
    let profiles = WorkloadProfile::all();
    let mut t = Table::new(vec!["Workload", "Class", "Approx. footprint", "Tx types"]);
    for cell in &report.cells {
        let class = profiles
            .iter()
            .find(|w| w.name() == cell.workload)
            .map(|w| w.class().to_string())
            .unwrap_or_default();
        t.row(vec![
            cell.workload.clone(),
            class,
            format!("{:.1} MB", cell.expect_metric("footprint_mb")),
            cell.expect_metric_u64("num_transaction_types").to_string(),
        ]);
    }
    t
}

/// Renders the application-parameters half of Table I.
pub fn workload_table() -> Table {
    workload_table_from(&run(&Scale::tiny()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_render_with_paper_values() {
        let sys = system_table(&EngineConfig::paper_default()).to_string();
        assert!(sys.contains("64KB, 2-way"));
        assert!(sys.contains("16K gshare + 16K bimodal"));

        let pif = pif_table(&PifConfig::paper_default()).to_string();
        assert!(pif.contains("2 preceding + trigger + 5 succeeding"));
        assert!(pif.contains("32K regions"));
        assert!(pif.contains("4 SABs x 7-region window"));

        let wl = workload_table();
        assert_eq!(wl.len(), 6);
        assert!(wl.to_string().contains("OLTP-DB2"));
    }
}
