//! fig-sampling (extension): the §5 measurement methodology itself —
//! how the 95% confidence half-width of sampled UIPC shrinks as the
//! sample count grows, per workload and prefetcher.
//!
//! The paper reports UIPC "at a 95% confidence level with less than ±5%
//! error" from SimFlex-style sampling; this figure shows what buying
//! that confidence costs in samples on the reproduction's workloads.

use serde::{Deserialize, Serialize};

use crate::{pct, Scale, Table};

/// One (workload, sample-count) point of the sampling study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SamplingRow {
    /// Workload name.
    pub workload: String,
    /// Measurement windows taken.
    pub samples: u32,
    /// Sampled no-prefetch UIPC estimate.
    pub none_uipc: f64,
    /// 95% confidence half-width of the no-prefetch estimate.
    pub none_ci95: f64,
    /// Sampled PIF UIPC estimate.
    pub pif_uipc: f64,
    /// 95% confidence half-width of the PIF estimate.
    pub pif_ci95: f64,
    /// PIF relative error (ci95 / mean — the paper targets < 5%).
    pub pif_rel_err: f64,
    /// PIF speedup over the sampled no-prefetch baseline.
    pub pif_speedup: f64,
    /// Simulated-to-total work ratio of the PIF sampled run (exceeds 1
    /// when windows overlap, i.e. at small scales).
    pub sampled_fraction: f64,
}

/// Runs the `fig-sampling` sweep and rebuilds its typed rows.
pub fn run(scale: &Scale) -> Vec<SamplingRow> {
    let report = pif_lab::run_spec(
        &pif_lab::registry::fig_sampling(),
        &pif_lab::RunOptions::new().scale(*scale),
    );
    let mut rows = Vec::new();
    for w in &report.workloads {
        for point in &report.points {
            let none = report
                .cell(w, Some("None"), point)
                .unwrap_or_else(|| panic!("fig-sampling grid missing {w}/None/{point}"));
            let pif = report
                .cell(w, Some("PIF"), point)
                .unwrap_or_else(|| panic!("fig-sampling grid missing {w}/PIF/{point}"));
            rows.push(SamplingRow {
                workload: w.clone(),
                samples: point.parse().expect("sample-count point label"),
                none_uipc: none.expect_metric("uipc_mean"),
                none_ci95: none.expect_metric("uipc_ci95"),
                pif_uipc: pif.expect_metric("uipc_mean"),
                pif_ci95: pif.expect_metric("uipc_ci95"),
                pif_rel_err: pif.expect_metric("uipc_rel_err"),
                pif_speedup: pif.expect_metric("uipc_speedup_vs_none"),
                sampled_fraction: pif.expect_metric("sampled_fraction"),
            });
        }
    }
    rows
}

/// The CI-half-width-vs-samples chart as a table.
pub fn table(rows: &[SamplingRow]) -> Table {
    let mut t = Table::new(vec![
        "Workload",
        "Samples",
        "None UIPC",
        "±ci95",
        "PIF UIPC",
        "±ci95",
        "rel err",
        "PIF speedup",
        "sim/total work",
    ]);
    for r in rows {
        t.row(vec![
            r.workload.clone(),
            r.samples.to_string(),
            format!("{:.4}", r.none_uipc),
            format!("{:.4}", r.none_ci95),
            format!("{:.4}", r.pif_uipc),
            format!("{:.4}", r.pif_ci95),
            pct(r.pif_rel_err),
            format!("{:.2}x", r.pif_speedup),
            pct(r.sampled_fraction),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_rows_cover_the_grid() {
        let rows = run(&Scale::tiny());
        // 2 workloads × 5 sample counts.
        assert_eq!(rows.len(), 2 * pif_lab::registry::FIG_SAMPLING_COUNTS.len());
        for r in &rows {
            assert!(r.samples >= 2);
            assert!(r.none_uipc > 0.0 && r.pif_uipc > 0.0);
            assert!(r.none_ci95 >= 0.0 && r.pif_ci95 >= 0.0);
            assert!(r.pif_speedup > 0.0);
        }
        assert!(!table(&rows).is_empty());
    }
}
