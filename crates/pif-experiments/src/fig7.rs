//! Figure 7: jump distance in history (log2 buckets), weighted by the
//! number of correct predictions made by the corresponding stream —
//! demonstrating the need for deep history storage (§5.1).

use serde::{Deserialize, Serialize};

use crate::{pct, Scale, Table};

pub use pif_lab::registry::JUMP_CDF_BUCKETS as BUCKETS;

/// One workload's weighted jump-distance CDF.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig7Row {
    /// Workload name.
    pub workload: String,
    /// Cumulative fraction of prediction-weighted jumps per log2 bucket.
    pub cdf: Vec<f64>,
}

impl Fig7Row {
    /// Fraction of predictions attributable to jumps longer than
    /// `2^log2_distance` — the paper's argument for deep history.
    pub fn tail_beyond(&self, log2_distance: usize) -> f64 {
        1.0 - self.cdf.get(log2_distance).copied().unwrap_or(1.0)
    }
}

/// Runs the Figure 7 study through the `fig7` pif-lab sweep (unbounded
/// history so jump distances are not truncated by capacity).
pub fn run(scale: &Scale) -> Vec<Fig7Row> {
    let report = pif_lab::run_spec(
        &pif_lab::registry::fig7(),
        &pif_lab::RunOptions::new().scale(*scale),
    );
    report
        .cells
        .iter()
        .map(|c| Fig7Row {
            workload: c.workload.clone(),
            cdf: (0..BUCKETS)
                .map(|i| c.expect_metric(&pif_lab::jump_cdf_metric(i)))
                .collect(),
        })
        .collect()
}

/// Renders selected CDF points (log2 distances 5, 10, 15, 20, 25).
pub fn table(rows: &[Fig7Row]) -> Table {
    let points = [5usize, 10, 15, 20, 25];
    let mut headers = vec!["Workload".to_string()];
    headers.extend(points.iter().map(|p| format!("<=2^{p}")));
    let mut t = Table::new(headers);
    for r in rows {
        let mut cells = vec![r.workload.clone()];
        cells.extend(
            points
                .iter()
                .map(|&p| pct(r.cdf.get(p).copied().unwrap_or(1.0))),
        );
        t.row(cells);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdfs_are_monotone_reaching_one() {
        let rows = run(&Scale::tiny());
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert_eq!(r.cdf.len(), BUCKETS);
            for w in r.cdf.windows(2) {
                assert!(w[0] <= w[1] + 1e-9, "{}: non-monotone CDF", r.workload);
            }
            let last = *r.cdf.last().unwrap();
            assert!(
                (last - 1.0).abs() < 1e-6,
                "{}: CDF ends at {last}",
                r.workload
            );
        }
        assert_eq!(table(&rows).len(), 6);
    }
}
