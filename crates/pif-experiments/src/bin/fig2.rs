//! Regenerates Figure 2: percentage of correctly predicted L1-I misses.
//!
//! Usage: `cargo run --release -p pif-experiments --bin fig2`
//! (set `PIF_SCALE=tiny|quick|paper` to control run size).

use pif_experiments::{fig2, Scale};

fn main() {
    let scale = Scale::from_env();
    println!("Figure 2 — Correctly predicted correct-path L1-I misses");
    println!(
        "({} instructions/workload, footprint scale {:.2})\n",
        scale.instructions, scale.footprint
    );
    let rows = fig2::run(&scale);
    print!("{}", fig2::table(&rows));
    println!("\nExpected shape: Miss < Access < Retire <= RetireSep; RetireSep ~99%+.");
}
