//! Regenerates Figure 7: weighted jump distance in history.
//!
//! Usage: `cargo run --release -p pif-experiments --bin fig7`

use pif_experiments::{fig7, Scale};

fn main() {
    let scale = Scale::from_env();
    println!("Figure 7 — Jump distance in history (CDF, weighted by coverage)\n");
    let rows = fig7::run(&scale);
    print!("{}", fig7::table(&rows));
    println!("\nExpected shape: substantial prediction mass beyond short distances —");
    println!("old streams matter, motivating deep history storage (32K regions).");
}
