//! Workload calibration: prints the trace-level properties that the
//! paper's workloads exhibit (multi-MB footprints, server-class I-miss
//! rates, realistic branch behaviour) so profile tuning is grounded in
//! numbers rather than guesswork.
//!
//! Usage: `PIF_SCALE=paper cargo run --release -p pif-experiments --bin calibrate`

use pif_experiments::{Scale, Table};
use pif_sim::{Engine, EngineConfig, NoPrefetcher, RunOptions};

fn main() {
    let scale = Scale::from_env();
    let engine = Engine::new(EngineConfig::paper_default());
    let mut t = Table::new(vec![
        "Workload",
        "Footprint",
        "I-MPKI",
        "Hit rate",
        "Branches",
        "Mispred",
        "WrongPath",
        "TL1",
        "FetchStall",
    ]);
    let rows = pif_experiments::Pool::default().parallel_map(scale.workloads(), |w| {
        let trace = w.generate(scale.instructions);
        let stats = trace.stats();
        let report = engine.run(
            trace.instrs().iter().copied(),
            NoPrefetcher,
            RunOptions::new(),
        );
        (w.name().to_string(), stats, report)
    });
    for (name, stats, report) in rows {
        let mpki =
            report.fetch.demand_misses as f64 / (report.frontend.instructions as f64 / 1000.0);
        t.row(vec![
            name,
            format!(
                "{:.2} MB",
                stats.footprint_bytes() as f64 / (1024.0 * 1024.0)
            ),
            format!("{mpki:.1}"),
            format!("{:.1}%", report.fetch.hit_rate() * 100.0),
            format!(
                "{:.1}%",
                report.frontend.branches as f64 / report.frontend.instructions as f64 * 100.0
            ),
            format!("{:.1}%", report.frontend.mispredict_rate() * 100.0),
            format!(
                "{:.1}%",
                report.fetch.wrong_path_accesses as f64
                    / (report.fetch.demand_accesses + report.fetch.wrong_path_accesses) as f64
                    * 100.0
            ),
            format!("{:.1}%", stats.tl1_fraction() * 100.0),
            format!("{:.1}%", report.timing.fetch_stall_fraction() * 100.0),
        ]);
    }
    println!(
        "Workload calibration ({} instructions/workload)\n",
        scale.instructions
    );
    print!("{t}");
    println!("\nTargets (server-workload literature): footprint >= 1 MB; I-MPKI 10-40;");
    println!("branches ~10-20% of instructions; mispredicts 2-8%; fetch stalls ~30-45%.");
}
