//! Diagnostic probe: dissect one workload's miss predictability under
//! different predictor knobs, split uncovered misses into cold vs stream
//! breaks, and show when new code is first touched. Used while
//! calibrating the synthetic workloads; kept as a debugging tool.
//!
//! Usage: `cargo run --release -p pif-experiments --bin probe [workload]`
use pif_experiments::Scale;
use pif_sim::cache::{AccessOutcome, InstructionCache};
use pif_sim::frontend::{FrontEnd, FrontendEvent};
use pif_sim::predictor_eval::{
    evaluate_stream_coverage_warmup, TemporalPredictorConfig, TemporalStreamPredictor,
};
use pif_sim::streams::BlockDedup;
use pif_sim::EngineConfig;
use pif_types::TrapLevel;

fn main() {
    let scale = Scale::from_env();
    let name = std::env::args().nth(1).unwrap_or_else(|| "DSS-Qry2".into());
    let w = scale
        .workloads()
        .into_iter()
        .find(|w| w.name() == name)
        .unwrap();
    let trace = w.generate(scale.instructions);
    let engine = EngineConfig::paper_default();
    for (wnd, pool) in [(64, 8), (512, 16), (4096, 16), (4096, 64)] {
        let cfg = TemporalPredictorConfig {
            window: wnd,
            miss_window: wnd / 12 + 4,
            pool,
            history_capacity: None,
        };
        let r =
            evaluate_stream_coverage_warmup(&engine, cfg, trace.instrs(), scale.warmup_instrs());
        println!(
            "window={wnd:5} pool={pool:3}  miss={:.3} access={:.3} retire={:.3} sep={:.3}  (n={})",
            r.miss, r.access, r.retire, r.retire_sep, r.correct_path_misses
        );
    }

    // Manual pass with a single retire-stream predictor, splitting
    // uncovered misses into cold (never recorded) vs stream breaks.
    let cfg = TemporalPredictorConfig::default();
    let mut pred = TemporalStreamPredictor::new(cfg, 1);
    let mut icache = InstructionCache::new(engine.icache).unwrap();
    let mut fe = FrontEnd::new(engine.frontend);
    let mut dedup = BlockDedup::new();
    let (mut covered, mut total) = (0u64, 0u64);
    let warmup = scale.warmup_instrs();
    let mut events = Vec::new();
    for (i, &instr) in trace.instrs().iter().enumerate() {
        let counting = i >= warmup;
        fe.step(instr, |e| events.push(e));
        for e in events.drain(..) {
            match e {
                FrontendEvent::Fetch(a) => {
                    let block = a.pc.block();
                    let missed = icache.demand_access(block) == AccessOutcome::Miss;
                    if a.is_correct_path() {
                        let hit = pred.advance(0, block);
                        if missed {
                            if !hit {
                                pred.try_open(0, block);
                            }
                            if counting {
                                total += 1;
                                covered += u64::from(hit);
                            }
                        }
                    }
                }
                FrontendEvent::Retire(ri, _) => {
                    if ri.trap_level == TrapLevel::Tl0 && dedup.observe(ri.pc.block()) {
                        pred.observe(0, ri.pc.block());
                    }
                }
            }
        }
    }
    let (cold, warm) = pred.uncovered_breakdown();
    println!(
        "retire-only: covered={covered}/{total} ({:.3}); uncovered cold={cold} warm(breaks)={warm}",
        covered as f64 / total.max(1) as f64
    );

    // First-touch timing: how much NEW code appears in each tenth of the
    // trace? (steady state should front-load first touches)
    let mut seen = std::collections::HashSet::new();
    let n = trace.len();
    let mut per_decile = [0u64; 10];
    for (i, instr) in trace.instrs().iter().enumerate() {
        if seen.insert(instr.pc.block().number()) {
            per_decile[(i * 10 / n).min(9)] += 1;
        }
    }
    println!("first-touched blocks per decile: {per_decile:?}");
}
