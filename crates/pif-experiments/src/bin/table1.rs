//! Prints Table I: the simulated system, PIF design point, and workload
//! suite — system/PIF halves from the live configuration objects, the
//! application half from the `table1` pif-lab sweep.
//!
//! Usage: `cargo run -p pif-experiments --bin table1`

use pif_core::PifConfig;
use pif_experiments::{table1, Scale};
use pif_sim::EngineConfig;

fn main() {
    println!("Table I — System parameters\n");
    print!("{}", table1::system_table(&EngineConfig::paper_default()));
    println!("\nPIF design point\n");
    print!("{}", table1::pif_table(&PifConfig::paper_default()));
    println!("\nApplication parameters (synthetic stand-ins)\n");
    print!(
        "{}",
        table1::workload_table_from(&table1::run(&Scale::tiny()))
    );
}
