//! Prints Table I: the simulated system, PIF design point, and workload
//! suite — from the live configuration objects.
//!
//! Usage: `cargo run -p pif-experiments --bin table1`

use pif_core::PifConfig;
use pif_experiments::table1;
use pif_sim::EngineConfig;

fn main() {
    println!("Table I — System parameters\n");
    print!("{}", table1::system_table(&EngineConfig::paper_default()));
    println!("\nPIF design point\n");
    print!("{}", table1::pif_table(&PifConfig::paper_default()));
    println!("\nApplication parameters (synthetic stand-ins)\n");
    print!("{}", table1::workload_table());
}
