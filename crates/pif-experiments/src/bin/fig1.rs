//! Figure 1, executable: the paper's two motivating examples, run on the
//! real simulator components rather than drawn by hand.
//!
//! Left: a 4-block direct-mapped cache fragments the repeating access
//! sequence ABCD into different miss sequences depending on what ran in
//! between. Right: a mispredicted branch injects wrong-path blocks into
//! the front-end access stream.
//!
//! Usage: `cargo run -p pif-experiments --bin fig1`

use pif_sim::cache::{Lru, SetAssocCache};
use pif_sim::frontend::{FrontEnd, FrontendEvent};
use pif_sim::FrontendConfig;
use pif_types::{Address, BlockAddr, BranchInfo, BranchKind, RetiredInstr, TrapLevel};

fn main() {
    left_panel();
    println!();
    right_panel();
}

/// Figure 1 (left): cache filtering fragments temporal streams.
fn left_panel() {
    println!("Figure 1 (left) — the instruction cache fragments access sequences");
    println!("4-block direct-mapped cache; access sequence: A B C D | R S | A B C D\n");

    let mut cache: SetAssocCache<Lru, ()> = SetAssocCache::new(4, 1).unwrap();
    let blocks: &[(&str, u64)] = &[
        ("A", 0),
        ("B", 1),
        ("C", 2),
        ("D", 3),
        ("R", 4), // conflicts with A
        ("S", 6), // conflicts with C
        ("A", 0),
        ("B", 1),
        ("C", 2),
        ("D", 3),
    ];
    let mut misses = Vec::new();
    for &(name, n) in blocks {
        let b = BlockAddr::from_number(n);
        if cache.access(b).is_none() {
            cache.insert(b, ());
            misses.push(name);
        }
    }
    println!("observed miss sequence: {}", misses.join(" "));
    println!("-> the second ABCD visit misses only A and C: the miss stream");
    println!("   no longer matches the access stream, so a miss-stream prefetcher");
    println!("   replaying 'A C' will never prefetch B and D.");
}

/// Figure 1 (right): branch-predictor noise in the access stream.
fn right_panel() {
    println!("Figure 1 (right) — wrong-path noise injected by a misprediction");
    println!("a conditional branch in block B skips blocks R,S,T when taken\n");

    // Train the predictor not-taken, then take the branch: the front end
    // speculates down the fall-through (R, S, ...) before the squash.
    let block_base = |i: u64| Address::new(i * 64 * 16);
    let branch_pc = block_base(1); // inside block B's range
    let taken_target = block_base(5); // block C region, skipping R,S,T
    let mk = |taken: bool| {
        RetiredInstr::branch(
            branch_pc,
            TrapLevel::Tl0,
            BranchInfo {
                kind: BranchKind::Conditional,
                taken,
                taken_target,
                fall_through: branch_pc.offset(4),
            },
        )
    };
    let mut trace = vec![RetiredInstr::simple(Address::new(0), TrapLevel::Tl0)];
    for _ in 0..40 {
        trace.push(mk(false));
        trace.push(RetiredInstr::simple(branch_pc.offset(4), TrapLevel::Tl0));
    }
    // The data-dependent flip:
    trace.push(mk(true));
    trace.push(RetiredInstr::simple(taken_target, TrapLevel::Tl0));
    trace.push(RetiredInstr::simple(
        taken_target.offset(64),
        TrapLevel::Tl0,
    ));

    let (events, stats) = FrontEnd::run_trace(FrontendConfig::paper_default(), &trace);
    let tail: Vec<String> = events
        .iter()
        .filter_map(|e| match e {
            FrontendEvent::Fetch(a) => Some(format!(
                "{}{}",
                a.pc.block(),
                if a.is_correct_path() {
                    ""
                } else {
                    " (wrong path!)"
                }
            )),
            _ => None,
        })
        .collect();
    println!("fetch-access stream (block granularity), last events:");
    for line in tail.iter().rev().take(6).rev() {
        println!("  {line}");
    }
    println!(
        "\nmispredicts: {} -> {} wrong-path accesses recorded into the access",
        stats.mispredicts, stats.wrong_path_accesses
    );
    println!("stream; an access-stream prefetcher will later replay this noise.");
}
