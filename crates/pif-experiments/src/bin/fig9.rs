//! Regenerates Figure 9: temporal stream lengths (left) and history size
//! sensitivity (right).
//!
//! Usage: `cargo run --release -p pif-experiments --bin fig9`

use pif_experiments::{fig9, Scale};

fn main() {
    let scale = Scale::from_env();
    println!("Figure 9 — Temporal stream studies\n");
    println!("Left: correct predictions by stream length (CDF)");
    let lengths = fig9::run_lengths(&scale);
    print!("{}", fig9::lengths_table(&lengths));
    println!("\nRight: predictor coverage vs history size");
    let sweep = fig9::run_history_sweep(&scale);
    print!("{}", fig9::history_table(&sweep));
    println!("\nExpected shape: medium/long streams contribute most predictions;");
    println!("coverage increases monotonically with history, saturating near 32K regions.");
}
