//! Regenerates the fig-sampling extension figure: 95% confidence
//! half-width of sampled UIPC vs sample count (the §5 measurement
//! methodology applied to the reproduction).
//!
//! Usage: `cargo run --release -p pif-experiments --bin fig_sampling`

use pif_experiments::{sampling, Scale};

fn main() {
    let scale = Scale::from_env();
    println!("fig-sampling — CI half-width vs sample count\n");
    let rows = sampling::run(&scale);
    print!("{}", sampling::table(&rows));
    println!("\nExpected shape: ci95 shrinks roughly as 1/sqrt(samples);");
    println!("the paper's methodology buys <5% relative error at its target sample count.");
}
