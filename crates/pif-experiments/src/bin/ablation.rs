//! Ablation study: the coverage cost of removing each PIF design element
//! (companion to the paper's §3-§5 design arguments).
//!
//! Usage: `cargo run --release -p pif-experiments --bin ablation`

use pif_experiments::{ablation, Scale};

fn main() {
    let scale = Scale::from_env();
    println!("PIF design ablations — L1 miss coverage per variant\n");
    let rows = ablation::run(&scale);
    print!("{}", ablation::table(&rows));
    println!("\nEach column removes one design element from the paper's configuration;");
    println!("coverage drops quantify the §3-§5 design arguments.");
}
