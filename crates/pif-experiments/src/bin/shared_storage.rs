//! Extension experiment: private per-core PIF storage vs. one shared
//! history buffer serving all cores (§4 mentions the sharing optimization
//! but evaluates dedicated hardware; this quantifies the trade-off).
//!
//! Cores run different threads of the *same* server binary (same code
//! image, different transaction interleavings), so shared history lets a
//! core predict code it has never executed — another core already
//! recorded it.
//!
//! Usage: `PIF_SCALE=quick cargo run --release -p pif-experiments --bin shared_storage`

use std::sync::Arc;

use pif_core::shared::{SharedPif, SharedPifStorage};
use pif_core::{Pif, PifConfig};
use pif_experiments::Scale;
use pif_sim::multicore::run_cmp;
use pif_sim::{EngineConfig, NoPrefetcher};

const CORES: usize = 8;

fn main() {
    let scale = Scale::from_env();
    let profile = scale
        .workloads()
        .into_iter()
        .next()
        .expect("profiles exist"); // OLTP-DB2
    let per_core = (scale.instructions / 4).max(200_000);
    let warmup = (per_core as f64 * scale.warmup_fraction) as usize;
    let engine = EngineConfig::paper_default();

    println!(
        "Shared vs private PIF storage — {} x {CORES} cores, {} instrs/core\n",
        profile.name(),
        per_core
    );

    let trace_for = |core: usize| {
        profile
            .generate_with_execution_seed(per_core, core as u64)
            .instrs()
            .to_vec()
    };

    let base = run_cmp(&engine, CORES, warmup, trace_for, |_| NoPrefetcher);
    let private = run_cmp(&engine, CORES, warmup, trace_for, |_| {
        Pif::new(PifConfig::paper_default())
    });
    let storage = Arc::new(SharedPifStorage::new(PifConfig::paper_default()));
    let shared = run_cmp(&engine, CORES, warmup, trace_for, |_| {
        SharedPif::attach(Arc::clone(&storage))
    });

    let private_bytes = PifConfig::paper_default().approx_storage_bytes() * CORES;
    let shared_bytes = PifConfig::paper_default().approx_storage_bytes();
    println!(
        "{:<22} {:>14} {:>14} {:>14}",
        "config", "coverage", "speedup", "storage"
    );
    println!(
        "{:<22} {:>13.1}% {:>13.2}x {:>11} KB",
        "private (per core)",
        private.miss_coverage().mean * 100.0,
        private.speedup_over(&base).mean,
        private_bytes / 1024
    );
    println!(
        "{:<22} {:>13.1}% {:>13.2}x {:>11} KB",
        "shared (one buffer)",
        shared.miss_coverage().mean * 100.0,
        shared.speedup_over(&base).mean,
        shared_bytes / 1024
    );
    println!(
        "\nShared storage costs {:.1}x less SRAM; coverage delta: {:+.1} points.",
        private_bytes as f64 / shared_bytes as f64,
        (shared.miss_coverage().mean - private.miss_coverage().mean) * 100.0
    );
}
