//! Regenerates Figure 10: competitive coverage (left) and speedup
//! (right) — Next-Line vs TIFS vs PIF vs perfect L1-I.
//!
//! Usage: `cargo run --release -p pif-experiments --bin fig10`

use pif_experiments::{fig10, Scale};

fn main() {
    let scale = Scale::from_env();
    println!("Figure 10 — Competitive comparison\n");
    let rows = fig10::run(&scale);
    println!("Left: L1 miss coverage");
    print!("{}", fig10::coverage_table(&rows));
    println!("\nRight: speedup over no-prefetch baseline");
    print!("{}", fig10::speedup_table(&rows));
    let s = fig10::summary(&rows);
    println!(
        "\nGeometric means — Next-Line: {:.2}x  TIFS: {:.2}x  PIF: {:.2}x  Perfect: {:.2}x",
        s.next_line, s.tifs, s.pif, s.perfect
    );
    println!("Expected shape: NL < TIFS (65-90%) < PIF (~99%); PIF ~= Perfect.");
}
