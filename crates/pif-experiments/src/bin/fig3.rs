//! Regenerates Figure 3: spatial region density (left) and discontinuous
//! accesses within spatial regions (right).
//!
//! Usage: `cargo run --release -p pif-experiments --bin fig3`

use pif_experiments::{fig3, Scale};

fn main() {
    let scale = Scale::from_env();
    println!("Figure 3 — Spatial region characterization (32-block regions)\n");
    let rows = fig3::run(&scale);
    println!("Left: density of spatial regions (accessed blocks per region)");
    print!("{}", fig3::density_table(&rows));
    println!("\nRight: discontinuous groups of sequential blocks per region");
    print!("{}", fig3::runs_table(&rows));
    println!("\nExpected shape: >50% of regions access more than one block;");
    println!("roughly one fifth of regions are discontinuous.");
}
