//! Regenerates Figure 8: accesses around the trigger block (left) and
//! spatial region size sensitivity (right).
//!
//! Usage: `cargo run --release -p pif-experiments --bin fig8`

use pif_experiments::{fig8, Scale};

fn main() {
    let scale = Scale::from_env();
    println!("Figure 8 — Spatial region geometry studies\n");
    println!("Left: distribution of accesses by offset from the trigger block");
    let offsets = fig8::run_offsets(&scale);
    print!("{}", fig8::offsets_table(&offsets));
    println!("\nRight: coverage vs region size (TL0 = application, TL1 = interrupts)");
    let sizes = fig8::run_sizes(&scale);
    print!("{}", fig8::sizes_table(&sizes));
    println!("\nExpected shape: +1/+2 dominate with a non-trivial backward tail at -1/-2;");
    println!("coverage grows with region size, with TL1 gaining the most.");
}
