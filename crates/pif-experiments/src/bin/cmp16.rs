//! 16-core CMP run with SimFlex-style statistics: per-core traces (each
//! core runs its own server context), results averaged across the 16
//! cores with 95% confidence intervals — the paper's §5 measurement
//! methodology.
//!
//! Usage: `cargo run --release -p pif-experiments --bin cmp16 [workload]`
//! (set `PIF_SCALE=tiny|quick|paper`; per-core traces are 1/4 the scale's
//! length to keep the 16-core run affordable).

use pif_baselines::{NextLinePrefetcher, PerfectICache, Tifs};
use pif_core::{Pif, PifConfig};
use pif_experiments::Scale;
use pif_sim::multicore::{run_cmp_sources, CmpReport};
use pif_sim::{EngineConfig, NoPrefetcher, Prefetcher};

const CORES: usize = 16;

fn main() {
    let scale = Scale::from_env();
    let name = std::env::args().nth(1).unwrap_or_else(|| "OLTP-DB2".into());
    let profile = scale
        .workloads()
        .into_iter()
        .find(|w| w.name() == name)
        .unwrap_or_else(|| {
            eprintln!("unknown workload {name}; using OLTP-DB2");
            scale.workloads().into_iter().next().unwrap()
        });

    let per_core_instrs = (scale.instructions / 4).max(200_000);
    let warmup = (per_core_instrs as f64 * scale.warmup_fraction) as usize;
    let engine = EngineConfig::paper_default();

    println!(
        "16-core CMP — {} ({} instructions/core, {}% warmup)\n",
        profile.name(),
        per_core_instrs,
        (scale.warmup_fraction * 100.0) as u32
    );

    let run = |mk: &(dyn Fn(usize) -> Box<dyn Prefetcher + Send> + Sync)| -> CmpReport {
        // Per-core traces are generated lazily on side threads and pulled
        // by the engines as InstrSources: the 16 traces never exist in
        // memory, so trace length is bounded by CPU time, not RAM.
        run_cmp_sources(
            &engine,
            CORES,
            warmup,
            |core| {
                profile
                    .with_seed_offset(core as u64)
                    .stream(per_core_instrs)
            },
            mk,
        )
    };

    let base = run(&|_| Box::new(NoPrefetcher));
    let nl = run(&|_| Box::new(NextLinePrefetcher::aggressive()));
    let tifs = run(&|_| Box::new(Tifs::unbounded()));
    let pif = run(&|_| Box::new(Pif::new(PifConfig::paper_default())));
    let perfect = run(&|_| Box::new(PerfectICache));

    println!(
        "{:<12} {:>18} {:>22} {:>14}",
        "config", "UIPC (mean±95%)", "speedup vs baseline", "hit rate"
    );
    let row = |name: &str, r: &CmpReport| {
        let uipc = r.uipc();
        let speedup = r.speedup_over(&base);
        let hit = r.hit_rate();
        println!(
            "{name:<12} {:>9.3} ±{:>5.1}% {:>15.2}x ±{:>3.1}% {:>12.1}%",
            uipc.mean,
            uipc.relative_error() * 100.0,
            speedup.mean,
            speedup.relative_error() * 100.0,
            hit.mean * 100.0,
        );
    };
    row("baseline", &base);
    row("Next-Line", &nl);
    row("TIFS", &tifs);
    row("PIF", &pif);
    row("Perfect", &perfect);

    println!("\nPaper methodology check: UIPC confidence at 95% should be < ±5% (paper §5);");
    println!(
        "measured relative error: ±{:.2}%",
        base.uipc().relative_error() * 100.0
    );
}
