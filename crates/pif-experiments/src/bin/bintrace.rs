//! Prints CFG-recovery and walk statistics for real ELF binaries — the
//! `pif-bintrace` counterpart of the synthetic workload Table I half.
//!
//! With no arguments, analyses the built-in demo fixture plus any repo
//! release binaries present under `target/release`; explicit paths
//! analyse those binaries instead.
//!
//! Usage: `cargo run -p pif-experiments --bin bintrace [-- <elf>...]`

use std::sync::Arc;

use pif_bintrace::cfg::{Cfg, Terminator};
use pif_bintrace::elf::ElfImage;
use pif_bintrace::walk::{WalkConfig, Walker};
use pif_experiments::Table;

const WALK_SAMPLE: usize = 200_000;

fn analyse(name: &str, image: &ElfImage, table: &mut Table) -> Result<(), String> {
    let cfg = Arc::new(Cfg::recover(image));
    let mut dead_ends = 0usize;
    let mut indirect = 0usize;
    for b in cfg.blocks.values() {
        match b.term {
            Terminator::DeadEnd => dead_ends += 1,
            Terminator::IndirectCall { .. } | Terminator::IndirectJump => indirect += 1,
            _ => {}
        }
    }
    let walker = Walker::new(Arc::clone(&cfg), WalkConfig::default().with_seed(1))
        .map_err(|e| e.to_string())?;
    let mut branches = 0usize;
    let mut calls = 0usize;
    for i in walker.take(WALK_SAMPLE) {
        if let Some(info) = i.branch {
            branches += 1;
            if info.kind.pushes_return() {
                calls += 1;
            }
        }
    }
    table.row(vec![
        name.to_string(),
        format!("{}", image.code_bytes() / 1024),
        format!("{}", cfg.func_starts.len()),
        format!("{}", cfg.block_count()),
        format!("{}", cfg.insn_count()),
        format!("{dead_ends}"),
        format!("{indirect}"),
        format!("{:.1}%", 100.0 * branches as f64 / WALK_SAMPLE as f64),
        format!("{:.1}%", 100.0 * calls as f64 / branches.max(1) as f64),
    ]);
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut table = Table::new(vec![
        "Binary",
        "Code KiB",
        "Funcs",
        "Blocks",
        "Static instrs",
        "Dead ends",
        "Indirect",
        "Branch rate",
        "Calls/branch",
    ]);

    let mut failures = 0usize;
    if args.is_empty() {
        let image = ElfImage::parse(&pif_bintrace::fixture::demo_elf()).expect("fixture parses");
        analyse("demo-fixture", &image, &mut table).expect("fixture walks");
        for (name, path) in pif_workloads::corpus::find_binaries("target/release") {
            match ElfImage::from_file(&path) {
                Ok(image) => {
                    if let Err(e) = analyse(&name, &image, &mut table) {
                        eprintln!("bintrace: {name}: {e}");
                        failures += 1;
                    }
                }
                Err(e) => {
                    eprintln!("bintrace: {name}: {e}");
                    failures += 1;
                }
            }
        }
    } else {
        for path in &args {
            match ElfImage::from_file(path) {
                Ok(image) => {
                    if let Err(e) = analyse(path, &image, &mut table) {
                        eprintln!("bintrace: {path}: {e}");
                        failures += 1;
                    }
                }
                Err(e) => {
                    eprintln!("bintrace: {path}: {e}");
                    failures += 1;
                }
            }
        }
    }

    println!("CFG recovery & seeded walk (sample {WALK_SAMPLE} instrs, seed 1)\n");
    print!("{table}");
    if failures > 0 {
        std::process::exit(1);
    }
}
