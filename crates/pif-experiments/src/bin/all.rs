//! Runs the entire evaluation suite: Table I and every figure, in paper
//! order.
//!
//! Usage: `PIF_SCALE=quick cargo run --release -p pif-experiments --bin all`

use pif_core::PifConfig;
use pif_experiments::{fig10, fig2, fig3, fig7, fig8, fig9, table1, Scale};
use pif_sim::EngineConfig;

fn main() {
    let scale = Scale::from_env();
    println!("=== PIF reproduction: full evaluation suite ===");
    println!(
        "scale: {} instructions/workload, footprint x{:.2}\n",
        scale.instructions, scale.footprint
    );

    println!("--- Table I ---\n");
    print!("{}", table1::system_table(&EngineConfig::paper_default()));
    println!();
    print!("{}", table1::pif_table(&PifConfig::paper_default()));
    println!();
    print!("{}", table1::workload_table());

    println!("\n--- Figure 2: predicted L1-I misses by stream point ---\n");
    print!("{}", fig2::table(&fig2::run(&scale)));

    println!("\n--- Figure 3: spatial region characterization ---\n");
    let f3 = fig3::run(&scale);
    print!("{}", fig3::density_table(&f3));
    println!();
    print!("{}", fig3::runs_table(&f3));

    println!("\n--- Figure 7: weighted jump distance (CDF) ---\n");
    print!("{}", fig7::table(&fig7::run(&scale)));

    println!("\n--- Figure 8: region geometry studies ---\n");
    print!("{}", fig8::offsets_table(&fig8::run_offsets(&scale)));
    println!();
    print!("{}", fig8::sizes_table(&fig8::run_sizes(&scale)));

    println!("\n--- Figure 9: temporal stream studies ---\n");
    print!("{}", fig9::lengths_table(&fig9::run_lengths(&scale)));
    println!();
    print!("{}", fig9::history_table(&fig9::run_history_sweep(&scale)));

    println!("\n--- Figure 10: competitive comparison ---\n");
    let f10 = fig10::run(&scale);
    print!("{}", fig10::coverage_table(&f10));
    println!();
    print!("{}", fig10::speedup_table(&f10));
    let s = fig10::summary(&f10);
    println!(
        "\nGeometric means — Next-Line: {:.2}x  TIFS: {:.2}x  PIF: {:.2}x  Perfect: {:.2}x",
        s.next_line, s.tifs, s.pif, s.perfect
    );
}
