//! Figure 9: temporal stream length contribution to prediction (left) and
//! history size sensitivity (right).

use serde::{Deserialize, Serialize};

use crate::{pct, Scale, Table};

pub use pif_lab::registry::FIG9_HISTORY_SIZES as HISTORY_SIZES;
pub use pif_lab::registry::LENGTH_CDF_BUCKETS as LENGTH_BUCKETS;

/// Left chart: correct predictions by stream length.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LengthRow {
    /// Workload name.
    pub workload: String,
    /// CDF of prediction-weighted stream lengths per log2 bucket.
    pub cdf: Vec<f64>,
}

impl LengthRow {
    /// Fraction of predictions from streams longer than `2^log2_regions`.
    pub fn tail_beyond(&self, log2_regions: usize) -> f64 {
        1.0 - self.cdf.get(log2_regions).copied().unwrap_or(1.0)
    }
}

/// Right chart: predictor coverage at one history size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistoryRow {
    /// Workload name.
    pub workload: String,
    /// History capacity in regions.
    pub history_regions: usize,
    /// Predictor coverage (§5.4 plots predictor coverage, not miss
    /// coverage, to remove cache ambiguity).
    pub coverage: f64,
}

/// Runs the left chart (unbounded history, as stream lengths are a
/// property of the workload) through the `fig9-lengths` pif-lab sweep.
pub fn run_lengths(scale: &Scale) -> Vec<LengthRow> {
    let report = pif_lab::run_spec(
        &pif_lab::registry::fig9_lengths(),
        &pif_lab::RunOptions::new().scale(*scale),
    );
    report
        .cells
        .iter()
        .map(|c| LengthRow {
            workload: c.workload.clone(),
            cdf: (0..LENGTH_BUCKETS)
                .map(|i| c.expect_metric(&pif_lab::len_cdf_metric(i)))
                .collect(),
        })
        .collect()
}

/// Runs the right chart (coverage as history capacity sweeps
/// [`HISTORY_SIZES`]) through the `fig9-history` pif-lab sweep.
pub fn run_history_sweep(scale: &Scale) -> Vec<HistoryRow> {
    let report = pif_lab::run_spec(
        &pif_lab::registry::fig9_history(),
        &pif_lab::RunOptions::new().scale(*scale),
    );
    report
        .cells
        .iter()
        .map(|c| HistoryRow {
            workload: c.workload.clone(),
            history_regions: c.point.parse().expect("history-capacity point label"),
            coverage: c.expect_metric("predictor_coverage"),
        })
        .collect()
}

/// Renders selected stream-length CDF points.
pub fn lengths_table(rows: &[LengthRow]) -> Table {
    let points = [3usize, 7, 11, 15, 19];
    let mut headers = vec!["Workload".to_string()];
    headers.extend(points.iter().map(|p| format!("<=2^{p} regions")));
    let mut t = Table::new(headers);
    for r in rows {
        let mut cells = vec![r.workload.clone()];
        cells.extend(
            points
                .iter()
                .map(|&p| pct(r.cdf.get(p).copied().unwrap_or(1.0))),
        );
        t.row(cells);
    }
    t
}

/// Renders the history sweep as workload x capacity coverage.
pub fn history_table(rows: &[HistoryRow]) -> Table {
    let mut headers = vec!["Workload".to_string()];
    headers.extend(HISTORY_SIZES.iter().map(|s| format!("{}K", s / 1024)));
    let mut t = Table::new(headers);
    let workloads: Vec<String> = {
        let mut names: Vec<String> = rows.iter().map(|r| r.workload.clone()).collect();
        names.dedup();
        names
    };
    for w in workloads {
        let mut cells = vec![w.clone()];
        for &cap in &HISTORY_SIZES {
            let cov = rows
                .iter()
                .find(|r| r.workload == w && r.history_regions == cap)
                .map(|r| r.coverage)
                .unwrap_or(0.0);
            cells.push(pct(cov));
        }
        t.row(cells);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_cdfs_valid() {
        let rows = run_lengths(&Scale::tiny());
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert_eq!(r.cdf.len(), LENGTH_BUCKETS);
            for w in r.cdf.windows(2) {
                assert!(w[0] <= w[1] + 1e-9);
            }
        }
        assert_eq!(lengths_table(&rows).len(), 6);
    }

    #[test]
    fn history_sweep_is_monotonic_in_capacity() {
        let rows = run_history_sweep(&Scale::tiny());
        assert_eq!(rows.len(), 6 * HISTORY_SIZES.len());
        for w in Scale::tiny().workloads() {
            let series: Vec<f64> = HISTORY_SIZES
                .iter()
                .map(|&cap| {
                    rows.iter()
                        .find(|r| r.workload == w.name() && r.history_regions == cap)
                        .unwrap()
                        .coverage
                })
                .collect();
            // Coverage should not *decrease* meaningfully with capacity.
            for pair in series.windows(2) {
                assert!(
                    pair[1] >= pair[0] - 0.02,
                    "{}: coverage dropped with capacity: {series:?}",
                    w.name()
                );
            }
        }
        assert_eq!(history_table(&rows).len(), 6);
    }
}
