//! Figure 9: temporal stream length contribution to prediction (left) and
//! history size sensitivity (right).

use pif_core::analysis::PifAnalyzer;
use pif_core::PifConfig;
use pif_sim::ICacheConfig;
use serde::{Deserialize, Serialize};

use crate::{pct, Scale, Table};

/// Log2 stream-length buckets plotted (the paper's x-axis runs to 21).
pub const LENGTH_BUCKETS: usize = 22;

/// History sizes swept in the right chart, in regions (the paper's x-axis
/// is log2 of 8-block K-regions: 1, 3, 5, 7, 9 → 2K..512K).
pub const HISTORY_SIZES: [usize; 5] = [2 * 1024, 8 * 1024, 32 * 1024, 128 * 1024, 512 * 1024];

/// Left chart: correct predictions by stream length.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LengthRow {
    /// Workload name.
    pub workload: String,
    /// CDF of prediction-weighted stream lengths per log2 bucket.
    pub cdf: Vec<f64>,
}

impl LengthRow {
    /// Fraction of predictions from streams longer than `2^log2_regions`.
    pub fn tail_beyond(&self, log2_regions: usize) -> f64 {
        1.0 - self.cdf.get(log2_regions).copied().unwrap_or(1.0)
    }
}

/// Right chart: predictor coverage at one history size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistoryRow {
    /// Workload name.
    pub workload: String,
    /// History capacity in regions.
    pub history_regions: usize,
    /// Predictor coverage (§5.4 plots predictor coverage, not miss
    /// coverage, to remove cache ambiguity).
    pub coverage: f64,
}

/// Runs the left chart (unbounded history, as stream lengths are a
/// property of the workload).
pub fn run_lengths(scale: &Scale) -> Vec<LengthRow> {
    let mut config = PifConfig::paper_default();
    config.history_capacity = 8 * 1024 * 1024;
    config.index_entries = 64 * 1024;
    let warmup = scale.warmup_instrs();
    let instructions = scale.instructions;
    crate::parallel_map(scale.workloads(), move |w| {
        let trace = w.generate(instructions);
        let report =
            PifAnalyzer::new(config, ICacheConfig::paper_default()).analyze(trace.instrs(), warmup);
        let mut cdf = report.stream_length.cdf();
        cdf.resize(LENGTH_BUCKETS, 1.0);
        LengthRow {
            workload: w.name().to_string(),
            cdf,
        }
    })
}

/// Runs the right chart: coverage as history capacity sweeps
/// [`HISTORY_SIZES`].
pub fn run_history_sweep(scale: &Scale) -> Vec<HistoryRow> {
    let warmup = scale.warmup_instrs();
    let instructions = scale.instructions;
    let per_workload = crate::parallel_map(scale.workloads(), move |w| {
        let trace = w.generate(instructions);
        let mut rows = Vec::new();
        for &capacity in &HISTORY_SIZES {
            let mut config = PifConfig::paper_default();
            config.history_capacity = capacity;
            let report = PifAnalyzer::new(config, ICacheConfig::paper_default())
                .analyze(trace.instrs(), warmup);
            rows.push(HistoryRow {
                workload: w.name().to_string(),
                history_regions: capacity,
                coverage: report.overall_predictor_coverage(),
            });
        }
        rows
    });
    per_workload.into_iter().flatten().collect()
}

/// Renders selected stream-length CDF points.
pub fn lengths_table(rows: &[LengthRow]) -> Table {
    let points = [3usize, 7, 11, 15, 19];
    let mut headers = vec!["Workload".to_string()];
    headers.extend(points.iter().map(|p| format!("<=2^{p} regions")));
    let mut t = Table::new(headers);
    for r in rows {
        let mut cells = vec![r.workload.clone()];
        cells.extend(
            points
                .iter()
                .map(|&p| pct(r.cdf.get(p).copied().unwrap_or(1.0))),
        );
        t.row(cells);
    }
    t
}

/// Renders the history sweep as workload x capacity coverage.
pub fn history_table(rows: &[HistoryRow]) -> Table {
    let mut headers = vec!["Workload".to_string()];
    headers.extend(HISTORY_SIZES.iter().map(|s| format!("{}K", s / 1024)));
    let mut t = Table::new(headers);
    let workloads: Vec<String> = {
        let mut names: Vec<String> = rows.iter().map(|r| r.workload.clone()).collect();
        names.dedup();
        names
    };
    for w in workloads {
        let mut cells = vec![w.clone()];
        for &cap in &HISTORY_SIZES {
            let cov = rows
                .iter()
                .find(|r| r.workload == w && r.history_regions == cap)
                .map(|r| r.coverage)
                .unwrap_or(0.0);
            cells.push(pct(cov));
        }
        t.row(cells);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_cdfs_valid() {
        let rows = run_lengths(&Scale::tiny());
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert_eq!(r.cdf.len(), LENGTH_BUCKETS);
            for w in r.cdf.windows(2) {
                assert!(w[0] <= w[1] + 1e-9);
            }
        }
        assert_eq!(lengths_table(&rows).len(), 6);
    }

    #[test]
    fn history_sweep_is_monotonic_in_capacity() {
        let rows = run_history_sweep(&Scale::tiny());
        assert_eq!(rows.len(), 6 * HISTORY_SIZES.len());
        for w in Scale::tiny().workloads() {
            let series: Vec<f64> = HISTORY_SIZES
                .iter()
                .map(|&cap| {
                    rows.iter()
                        .find(|r| r.workload == w.name() && r.history_regions == cap)
                        .unwrap()
                        .coverage
                })
                .collect();
            // Coverage should not *decrease* meaningfully with capacity.
            for pair in series.windows(2) {
                assert!(
                    pair[1] >= pair[0] - 0.02,
                    "{}: coverage dropped with capacity: {series:?}",
                    w.name()
                );
            }
        }
        assert_eq!(history_table(&rows).len(), 6);
    }
}
