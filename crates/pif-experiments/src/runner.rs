//! Experiment scale control and a tiny parallel mapper.

use pif_workloads::WorkloadProfile;

/// How big an experiment run should be.
///
/// The paper traces 1B instructions per core on full server binaries; the
/// synthetic workloads reach steady state far sooner, so even
/// [`Scale::paper`] runs on a laptop in minutes while preserving the
/// result *shapes*.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    /// Instructions per workload trace.
    pub instructions: usize,
    /// Footprint scale factor applied to each profile.
    pub footprint: f64,
    /// Fraction of the trace treated as warmup (recorded, not measured).
    pub warmup_fraction: f64,
}

impl Scale {
    /// Minimal scale for doctests and unit tests (sub-second).
    pub fn tiny() -> Self {
        Scale {
            instructions: 40_000,
            footprint: 0.03,
            warmup_fraction: 0.3,
        }
    }

    /// Quick scale for integration tests (a few seconds per figure).
    pub fn quick() -> Self {
        Scale {
            instructions: 300_000,
            footprint: 0.15,
            warmup_fraction: 0.3,
        }
    }

    /// Paper-like scale used by the experiment binaries and benches.
    pub fn paper() -> Self {
        Scale {
            instructions: 12_000_000,
            footprint: 1.0,
            warmup_fraction: 0.3,
        }
    }

    /// Reads `PIF_SCALE` from the environment (`tiny`, `quick`, `paper`;
    /// default `paper`).
    pub fn from_env() -> Self {
        match std::env::var("PIF_SCALE").as_deref() {
            Ok("tiny") => Self::tiny(),
            Ok("quick") => Self::quick(),
            _ => Self::paper(),
        }
    }

    /// The six workloads at this scale.
    pub fn workloads(&self) -> Vec<WorkloadProfile> {
        WorkloadProfile::all()
            .into_iter()
            .map(|w| w.scaled(self.footprint))
            .collect()
    }

    /// Warmup length in instructions.
    pub fn warmup_instrs(&self) -> usize {
        (self.instructions as f64 * self.warmup_fraction) as usize
    }
}

impl Default for Scale {
    fn default() -> Self {
        Self::paper()
    }
}

/// Maps `f` over `items` on one thread per item (the experiment suite's
/// unit of parallelism is the workload).
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    std::thread::scope(|s| {
        let handles: Vec<_> = items.into_iter().map(|item| s.spawn(|| f(item))).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::tiny().instructions < Scale::quick().instructions);
        assert!(Scale::quick().instructions < Scale::paper().instructions);
    }

    #[test]
    fn workloads_scaled() {
        let s = Scale::tiny();
        let ws = s.workloads();
        assert_eq!(ws.len(), 6);
        assert!(ws[0].params().num_functions < WorkloadProfile::oltp_db2().params().num_functions);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map(vec![1, 2, 3, 4], |x| x * 10);
        assert_eq!(out, vec![10, 20, 30, 40]);
    }

    #[test]
    fn warmup_instrs_follow_fraction() {
        let s = Scale {
            instructions: 1000,
            footprint: 1.0,
            warmup_fraction: 0.25,
        };
        assert_eq!(s.warmup_instrs(), 250);
    }
}
