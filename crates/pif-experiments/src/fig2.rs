//! Figure 2: percentage of correctly predicted correct-path L1-I misses
//! when recording temporal streams at each observation point (Miss,
//! Access, Retire, RetireSep).

use serde::{Deserialize, Serialize};

use crate::{pct, Scale, Table};

/// One workload's coverage at the four observation points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig2Row {
    /// Workload name.
    pub workload: String,
    /// Coverage predicting the miss stream.
    pub miss: f64,
    /// Coverage predicting the access stream.
    pub access: f64,
    /// Coverage predicting the retire stream.
    pub retire: f64,
    /// Coverage predicting per-trap-level retire streams.
    pub retire_sep: f64,
    /// Correct-path misses measured.
    pub misses: u64,
}

/// Runs the Figure 2 study for all six workloads (through the `fig2`
/// pif-lab sweep).
pub fn run(scale: &Scale) -> Vec<Fig2Row> {
    let report = pif_lab::run_spec(
        &pif_lab::registry::fig2(),
        &pif_lab::RunOptions::new().scale(*scale),
    );
    report
        .cells
        .iter()
        .map(|c| Fig2Row {
            workload: c.workload.clone(),
            miss: c.expect_metric("miss"),
            access: c.expect_metric("access"),
            retire: c.expect_metric("retire"),
            retire_sep: c.expect_metric("retire_sep"),
            misses: c.expect_metric_u64("correct_path_misses"),
        })
        .collect()
}

/// Renders the rows as the paper's Figure 2 bar values.
pub fn table(rows: &[Fig2Row]) -> Table {
    let mut t = Table::new(vec![
        "Workload",
        "Miss",
        "Access",
        "Retire",
        "RetireSep",
        "L1-I misses",
    ]);
    for r in rows {
        t.row(vec![
            r.workload.clone(),
            pct(r.miss),
            pct(r.access),
            pct(r.retire),
            pct(r.retire_sep),
            r.misses.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_produces_six_ordered_rows() {
        let rows = run(&Scale::tiny());
        assert_eq!(rows.len(), 6);
        assert_eq!(rows[0].workload, "OLTP-DB2");
        for r in &rows {
            for v in [r.miss, r.access, r.retire, r.retire_sep] {
                assert!((0.0..=1.0).contains(&v), "{}: {v}", r.workload);
            }
        }
        let t = table(&rows);
        assert_eq!(t.len(), 6);
    }
}
