//! Figure 8: distribution of accesses around the trigger block (left) and
//! spatial region size sensitivity at trap levels 0 and 1 (right).

use serde::{Deserialize, Serialize};

use crate::{pct, Scale, Table};

pub use pif_lab::registry::FIG8_REGION_SIZES as REGION_SIZES;
pub use pif_lab::registry::REGION_OFFSETS as OFFSETS;

/// Left chart: one workload class's access-frequency-by-offset profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OffsetRow {
    /// Workload name.
    pub workload: String,
    /// Access frequency at each offset in [`OFFSETS`].
    pub frequency: Vec<f64>,
}

/// Right chart: coverage by region size and trap level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SizeRow {
    /// Workload name.
    pub workload: String,
    /// Region size (total blocks).
    pub size: u8,
    /// TL0 (application) miss coverage.
    pub tl0: f64,
    /// TL1 (interrupt) miss coverage.
    pub tl1: f64,
}

/// Runs the left chart (trigger-offset distribution, (4, 12) probe
/// geometry) through the `fig8-offsets` pif-lab sweep.
pub fn run_offsets(scale: &Scale) -> Vec<OffsetRow> {
    let report = pif_lab::run_spec(
        &pif_lab::registry::fig8_offsets(),
        &pif_lab::RunOptions::new().scale(*scale),
    );
    report
        .cells
        .iter()
        .map(|c| OffsetRow {
            workload: c.workload.clone(),
            frequency: OFFSETS
                .iter()
                .map(|&o| c.expect_metric(&pif_lab::offset_metric(o)))
                .collect(),
        })
        .collect()
}

/// Runs the right chart (TL0/TL1 coverage as region size sweeps
/// [`REGION_SIZES`]) through the `fig8-sizes` pif-lab sweep.
pub fn run_sizes(scale: &Scale) -> Vec<SizeRow> {
    let report = pif_lab::run_spec(
        &pif_lab::registry::fig8_sizes(),
        &pif_lab::RunOptions::new().scale(*scale),
    );
    report
        .cells
        .iter()
        .map(|c| SizeRow {
            workload: c.workload.clone(),
            size: c.point.parse().expect("region-size point label"),
            tl0: c.expect_metric("miss_coverage_tl0"),
            tl1: c.expect_metric("miss_coverage_tl1"),
        })
        .collect()
}

/// Renders the offset distribution.
pub fn offsets_table(rows: &[OffsetRow]) -> Table {
    let mut headers = vec!["Workload".to_string()];
    headers.extend(OFFSETS.iter().map(|o| o.to_string()));
    let mut t = Table::new(headers);
    for r in rows {
        let mut cells = vec![r.workload.clone()];
        cells.extend(r.frequency.iter().map(|&v| pct(v)));
        t.row(cells);
    }
    t
}

/// Renders the size sweep.
pub fn sizes_table(rows: &[SizeRow]) -> Table {
    let mut t = Table::new(vec!["Workload", "Region size", "TL0", "TL1"]);
    for r in rows {
        t.row(vec![
            r.workload.clone(),
            r.size.to_string(),
            pct(r.tl0),
            pct(r.tl1),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_profile_shapes() {
        let rows = run_offsets(&Scale::tiny());
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert_eq!(r.frequency.len(), OFFSETS.len());
            // +1 should be the most frequent neighbour (sequential flow).
            let plus1 = r.frequency[4];
            let plus12 = r.frequency[15];
            assert!(
                plus1 >= plus12,
                "{}: +1 ({plus1}) should dominate +12 ({plus12})",
                r.workload
            );
        }
    }

    #[test]
    fn size_sweep_covers_all_sizes() {
        let rows = run_sizes(&Scale::tiny());
        assert_eq!(rows.len(), 6 * REGION_SIZES.len());
        for r in &rows {
            assert!((0.0..=1.0).contains(&r.tl0));
            assert!((0.0..=1.0).contains(&r.tl1));
        }
        assert!(!sizes_table(&rows).is_empty());
    }
}
