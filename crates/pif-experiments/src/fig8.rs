//! Figure 8: distribution of accesses around the trigger block (left) and
//! spatial region size sensitivity at trap levels 0 and 1 (right).

use pif_core::analysis::{analyze_regions, PifAnalyzer};
use pif_core::PifConfig;
use pif_sim::ICacheConfig;
use pif_types::{RegionGeometry, TrapLevel};
use serde::{Deserialize, Serialize};

use crate::{pct, Scale, Table};

/// Offsets plotted in the left chart (the paper plots -4..12, no 0: the
/// trigger itself is implicit).
pub const OFFSETS: [i64; 16] = [-4, -3, -2, -1, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12];

/// Region sizes swept in the right chart.
pub const REGION_SIZES: [u8; 5] = [1, 2, 4, 6, 8];

/// Left chart: one workload class's access-frequency-by-offset profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OffsetRow {
    /// Workload name.
    pub workload: String,
    /// Access frequency at each offset in [`OFFSETS`].
    pub frequency: Vec<f64>,
}

/// Right chart: coverage by region size and trap level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SizeRow {
    /// Workload name.
    pub workload: String,
    /// Region size (total blocks).
    pub size: u8,
    /// TL0 (application) miss coverage.
    pub tl0: f64,
    /// TL1 (interrupt) miss coverage.
    pub tl1: f64,
}

/// Runs the left chart: trigger-offset distribution with a (4, 12) probe
/// geometry.
pub fn run_offsets(scale: &Scale) -> Vec<OffsetRow> {
    let geometry = RegionGeometry::new(4, 12).expect("17-block probe region");
    let instructions = scale.instructions;
    crate::parallel_map(scale.workloads(), move |w| {
        let trace = w.generate(instructions);
        let report = analyze_regions(trace.instrs(), geometry);
        OffsetRow {
            workload: w.name().to_string(),
            frequency: OFFSETS
                .iter()
                .map(|&o| report.offset_frequency(o))
                .collect(),
        }
    })
}

/// Runs the right chart: TL0/TL1 coverage as region size sweeps
/// [`REGION_SIZES`].
pub fn run_sizes(scale: &Scale) -> Vec<SizeRow> {
    let warmup = scale.warmup_instrs();
    let instructions = scale.instructions;
    let per_workload = crate::parallel_map(scale.workloads(), move |w| {
        let trace = w.generate(instructions);
        let mut rows = Vec::new();
        for &size in &REGION_SIZES {
            let mut config = PifConfig::paper_default();
            config.geometry = RegionGeometry::skewed_with_total(size).expect("valid size");
            let report = PifAnalyzer::new(config, ICacheConfig::paper_default())
                .analyze(trace.instrs(), warmup);
            rows.push(SizeRow {
                workload: w.name().to_string(),
                size,
                tl0: report.miss_coverage(TrapLevel::Tl0),
                tl1: report.miss_coverage(TrapLevel::Tl1),
            });
        }
        rows
    });
    per_workload.into_iter().flatten().collect()
}

/// Renders the offset distribution.
pub fn offsets_table(rows: &[OffsetRow]) -> Table {
    let mut headers = vec!["Workload".to_string()];
    headers.extend(OFFSETS.iter().map(|o| o.to_string()));
    let mut t = Table::new(headers);
    for r in rows {
        let mut cells = vec![r.workload.clone()];
        cells.extend(r.frequency.iter().map(|&v| pct(v)));
        t.row(cells);
    }
    t
}

/// Renders the size sweep.
pub fn sizes_table(rows: &[SizeRow]) -> Table {
    let mut t = Table::new(vec!["Workload", "Region size", "TL0", "TL1"]);
    for r in rows {
        t.row(vec![
            r.workload.clone(),
            r.size.to_string(),
            pct(r.tl0),
            pct(r.tl1),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_profile_shapes() {
        let rows = run_offsets(&Scale::tiny());
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert_eq!(r.frequency.len(), OFFSETS.len());
            // +1 should be the most frequent neighbour (sequential flow).
            let plus1 = r.frequency[4];
            let plus12 = r.frequency[15];
            assert!(
                plus1 >= plus12,
                "{}: +1 ({plus1}) should dominate +12 ({plus12})",
                r.workload
            );
        }
    }

    #[test]
    fn size_sweep_covers_all_sizes() {
        let rows = run_sizes(&Scale::tiny());
        assert_eq!(rows.len(), 6 * REGION_SIZES.len());
        for r in &rows {
            assert!((0.0..=1.0).contains(&r.tl0));
            assert!((0.0..=1.0).contains(&r.tl1));
        }
        assert!(!sizes_table(&rows).is_empty());
    }
}
