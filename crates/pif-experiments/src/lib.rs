//! Experiment harness regenerating every table and figure of the PIF
//! paper's evaluation (§5).
//!
//! One module per artifact:
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`table1`] | Table I — system and application parameters |
//! | [`fig2`] | Fig. 2 — correctly predicted L1-I misses per stream point |
//! | [`fig3`] | Fig. 3 — spatial region density and discontinuous runs |
//! | [`fig7`] | Fig. 7 — jump distance weighted by coverage |
//! | [`fig8`] | Fig. 8 — accesses around the trigger; region size sweep |
//! | [`fig9`] | Fig. 9 — stream lengths; history size sensitivity |
//! | [`fig10`] | Fig. 10 — competitive coverage and speedup |
//! | [`ablation`] | (extension) per-design-element coverage ablations |
//! | [`sampling`] | (extension) fig-sampling — CI half-width vs sample count |
//!
//! Every module exposes a `run(&Scale) -> …` function returning
//! structured rows plus a [`Table`] rendering, and a binary of the same
//! name prints it. The [`Scale`] controls trace length and footprint so
//! the suite runs in seconds (`Scale::quick()`) or at paper-like fidelity
//! (`Scale::paper()`, the default for binaries).
//!
//! Execution is delegated to the `pif-lab` sweep engine: each `run`
//! invokes the figure's committed [`pif_lab::SweepSpec`] (see
//! `pif_lab::registry`) on the parallel job pool and rebuilds its typed
//! rows from the resulting [`pif_lab::SweepReport`] cells, so the
//! binaries, the `piflab` CLI, and the CI golden-report gate all measure
//! exactly the same grid.
//!
//! # Example
//!
//! ```
//! use pif_experiments::{fig2, Scale};
//!
//! let rows = fig2::run(&Scale::tiny());
//! assert_eq!(rows.len(), 6);
//! for r in &rows {
//!     assert!(r.retire_sep >= 0.0 && r.retire_sep <= 1.0);
//! }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ablation;
pub mod fig10;
pub mod fig2;
pub mod fig3;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod sampling;
pub mod table1;
mod tablefmt;

pub use pif_lab::{Pool, Scale};
pub use tablefmt::Table;

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a speedup factor with two decimals.
pub fn speedup(x: f64) -> String {
    format!("{x:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.995), "99.5%");
        assert_eq!(pct(0.0), "0.0%");
    }

    #[test]
    fn speedup_formats() {
        assert_eq!(speedup(1.27), "1.27x");
    }
}
