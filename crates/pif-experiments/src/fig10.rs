//! Figure 10: competitive comparison — L1 miss coverage (left) and UIPC
//! speedup over the no-prefetch baseline (right) for Next-Line, TIFS, PIF
//! and a perfect L1-I.

use serde::{Deserialize, Serialize};

use crate::{pct, speedup, Scale, Table};

/// One workload's competitive results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig10Row {
    /// Workload name.
    pub workload: String,
    /// Next-line miss coverage.
    pub next_line_coverage: f64,
    /// TIFS miss coverage.
    pub tifs_coverage: f64,
    /// PIF miss coverage.
    pub pif_coverage: f64,
    /// Next-line speedup over no-prefetch.
    pub next_line_speedup: f64,
    /// TIFS speedup over no-prefetch.
    pub tifs_speedup: f64,
    /// PIF speedup over no-prefetch.
    pub pif_speedup: f64,
    /// Perfect-latency cache speedup over no-prefetch.
    pub perfect_speedup: f64,
    /// Baseline L1-I hit rate (context).
    pub baseline_hit_rate: f64,
    /// PIF L1-I hit rate (the paper reports > 99.5%).
    pub pif_hit_rate: f64,
}

/// Runs the Figure 10 comparison through the `fig10` pif-lab sweep. As
/// in §5.5, TIFS and PIF run without history storage limitations to
/// expose the fundamental predictor gap, and measurements cover the
/// post-warmup steady state (§5's warmed checkpoints).
pub fn run(scale: &Scale) -> Vec<Fig10Row> {
    let report = pif_lab::run_spec(
        &pif_lab::registry::fig10(),
        &pif_lab::RunOptions::new().scale(*scale),
    );
    report
        .workloads
        .iter()
        .map(|w| {
            let cell = |p: &str| {
                report
                    .cell(w, Some(p), "-")
                    .unwrap_or_else(|| panic!("fig10 grid missing {w}/{p}"))
            };
            let (base, nl, tifs, pif, perfect) = (
                cell("None"),
                cell("Next-Line"),
                cell("TIFS-unbounded"),
                cell("PIF"),
                cell("Perfect"),
            );
            let speedup = |c: &pif_lab::Cell| c.expect_metric("uipc_speedup_vs_none");
            Fig10Row {
                workload: w.clone(),
                next_line_coverage: nl.expect_metric("miss_coverage"),
                tifs_coverage: tifs.expect_metric("miss_coverage"),
                pif_coverage: pif.expect_metric("miss_coverage"),
                next_line_speedup: speedup(nl),
                tifs_speedup: speedup(tifs),
                pif_speedup: speedup(pif),
                perfect_speedup: speedup(perfect),
                baseline_hit_rate: base.expect_metric("hit_rate"),
                pif_hit_rate: pif.expect_metric("hit_rate"),
            }
        })
        .collect()
}

/// Left chart: coverage comparison.
pub fn coverage_table(rows: &[Fig10Row]) -> Table {
    let mut t = Table::new(vec!["Workload", "Next-Line", "TIFS", "PIF"]);
    for r in rows {
        t.row(vec![
            r.workload.clone(),
            pct(r.next_line_coverage),
            pct(r.tifs_coverage),
            pct(r.pif_coverage),
        ]);
    }
    t
}

/// Right chart: speedup comparison.
pub fn speedup_table(rows: &[Fig10Row]) -> Table {
    let mut t = Table::new(vec![
        "Workload",
        "Next-Line",
        "TIFS",
        "PIF",
        "Perfect",
        "PIF hit rate",
    ]);
    for r in rows {
        t.row(vec![
            r.workload.clone(),
            speedup(r.next_line_speedup),
            speedup(r.tifs_speedup),
            speedup(r.pif_speedup),
            speedup(r.perfect_speedup),
            pct(r.pif_hit_rate),
        ]);
    }
    t
}

/// Geometric-mean speedups across workloads (the paper reports averages:
/// PIF 27%, Perfect 29%).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpeedupSummary {
    /// Next-line mean speedup.
    pub next_line: f64,
    /// TIFS mean speedup.
    pub tifs: f64,
    /// PIF mean speedup.
    pub pif: f64,
    /// Perfect-cache mean speedup.
    pub perfect: f64,
}

/// Computes geometric-mean speedups.
pub fn summary(rows: &[Fig10Row]) -> SpeedupSummary {
    fn gmean(values: impl Iterator<Item = f64>, n: usize) -> f64 {
        (values.map(|v| v.ln()).sum::<f64>() / n as f64).exp()
    }
    let n = rows.len().max(1);
    SpeedupSummary {
        next_line: gmean(rows.iter().map(|r| r.next_line_speedup), n),
        tifs: gmean(rows.iter().map(|r| r.tifs_speedup), n),
        pif: gmean(rows.iter().map(|r| r.pif_speedup), n),
        perfect: gmean(rows.iter().map(|r| r.perfect_speedup), n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_produces_sane_rows() {
        let rows = run(&Scale::tiny());
        assert_eq!(rows.len(), 6);
        for r in &rows {
            for c in [r.next_line_coverage, r.tifs_coverage, r.pif_coverage] {
                assert!((0.0..=1.0).contains(&c), "{}: coverage {c}", r.workload);
            }
            for s in [
                r.next_line_speedup,
                r.tifs_speedup,
                r.pif_speedup,
                r.perfect_speedup,
            ] {
                assert!(s > 0.5 && s < 5.0, "{}: speedup {s}", r.workload);
            }
        }
        let s = summary(&rows);
        assert!(s.perfect >= 1.0);
        assert!(!coverage_table(&rows).is_empty());
        assert!(!speedup_table(&rows).is_empty());
    }
}
