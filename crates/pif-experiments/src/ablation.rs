//! Ablation study: remove each PIF design element in turn and measure the
//! coverage cost. Not a paper figure, but each row quantifies a design
//! choice the paper argues for:
//!
//! * **spatial regions** (§3.1) — single-block records instead of 8-block
//!   trigger+bit-vector regions;
//! * **temporal compactor** (§3.2 / §4.1) — record every loop iteration;
//! * **trap-level separation** (§2.3) — record interrupts inline;
//! * **deep history** (§5.4) — 1K regions instead of 32K;
//! * **multiple SABs** (§4.3) — a single prediction stream;
//! * **preceding blocks** (§5.2) — regions skewed strictly forward.

use pif_core::{Pif, PifConfig};
use pif_sim::{Engine, EngineConfig};
use pif_types::RegionGeometry;
use serde::{Deserialize, Serialize};

use crate::{pct, Scale, Table};

/// One ablated design variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Variant {
    /// The paper's full design point.
    Paper,
    /// Regions of a single block (no spatial compaction).
    NoSpatialRegions,
    /// Temporal compactor reduced to one entry (loop records repeat).
    NoTemporalCompactor,
    /// All trap levels recorded in one unified stream.
    NoTrapSeparation,
    /// History shrunk to 1K regions.
    TinyHistory,
    /// A single stream address buffer.
    OneSab,
    /// No preceding blocks in the region (0 preceding + 7 succeeding).
    NoPrecedingBlocks,
}

impl Variant {
    /// All variants in presentation order.
    pub const ALL: [Variant; 7] = [
        Variant::Paper,
        Variant::NoSpatialRegions,
        Variant::NoTemporalCompactor,
        Variant::NoTrapSeparation,
        Variant::TinyHistory,
        Variant::OneSab,
        Variant::NoPrecedingBlocks,
    ];

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Variant::Paper => "paper design",
            Variant::NoSpatialRegions => "- spatial regions",
            Variant::NoTemporalCompactor => "- temporal compactor",
            Variant::NoTrapSeparation => "- trap separation",
            Variant::TinyHistory => "- deep history (1K)",
            Variant::OneSab => "- SAB pool (1 SAB)",
            Variant::NoPrecedingBlocks => "- preceding blocks",
        }
    }

    /// The PIF configuration implementing this variant.
    pub fn config(self) -> PifConfig {
        let mut cfg = PifConfig::paper_default();
        match self {
            Variant::Paper => {}
            Variant::NoSpatialRegions => {
                cfg.geometry = RegionGeometry::new(0, 0).expect("single block");
            }
            Variant::NoTemporalCompactor => cfg.temporal_entries = 1,
            Variant::NoTrapSeparation => cfg.separate_trap_levels = false,
            Variant::TinyHistory => cfg.history_capacity = 1024,
            Variant::OneSab => cfg.sab_count = 1,
            Variant::NoPrecedingBlocks => {
                cfg.geometry = RegionGeometry::new(0, 7).expect("forward-only region");
            }
        }
        cfg
    }
}

/// Coverage of each variant on each workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationRow {
    /// Workload name.
    pub workload: String,
    /// Miss coverage per variant, aligned with [`Variant::ALL`].
    pub coverage: Vec<f64>,
}

/// Runs the ablation grid.
pub fn run(scale: &Scale) -> Vec<AblationRow> {
    let engine = Engine::new(EngineConfig::paper_default());
    let instructions = scale.instructions;
    let warmup = scale.warmup_instrs();
    crate::parallel_map(scale.workloads(), move |w| {
        let trace = w.generate(instructions);
        let coverage = Variant::ALL
            .iter()
            .map(|v| {
                engine
                    .run_warmup(&trace, Pif::new(v.config()), warmup)
                    .miss_coverage()
            })
            .collect();
        AblationRow {
            workload: w.name().to_string(),
            coverage,
        }
    })
}

/// Renders the ablation grid.
pub fn table(rows: &[AblationRow]) -> Table {
    let mut headers = vec!["Workload".to_string()];
    headers.extend(Variant::ALL.iter().map(|v| v.label().to_string()));
    let mut t = Table::new(headers);
    for r in rows {
        let mut cells = vec![r.workload.clone()];
        cells.extend(r.coverage.iter().map(|&v| pct(v)));
        t.row(cells);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_produce_valid_configs() {
        for v in Variant::ALL {
            assert!(v.config().validate().is_ok(), "{} invalid", v.label());
        }
        assert_eq!(Variant::Paper.config(), PifConfig::paper_default());
        assert!(!Variant::NoTrapSeparation.config().separate_trap_levels);
        assert_eq!(
            Variant::NoSpatialRegions.config().geometry.total_blocks(),
            1
        );
    }

    #[test]
    fn ablation_grid_runs_and_paper_design_is_competitive() {
        let rows = run(&Scale::tiny());
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert_eq!(r.coverage.len(), Variant::ALL.len());
            let paper = r.coverage[0];
            for (v, &c) in Variant::ALL.iter().zip(&r.coverage) {
                assert!(
                    (0.0..=1.0).contains(&c),
                    "{}: {} = {c}",
                    r.workload,
                    v.label()
                );
            }
            // The full design should roughly dominate the single-block
            // ablation (spatial regions are the big win).
            assert!(
                paper >= r.coverage[1] - 0.10,
                "{}: paper {paper} vs no-regions {}",
                r.workload,
                r.coverage[1]
            );
        }
        assert_eq!(table(&rows).len(), 6);
    }
}
