//! Ablation study: remove each PIF design element in turn and measure the
//! coverage cost. Not a paper figure, but each row quantifies a design
//! choice the paper argues for:
//!
//! * **spatial regions** (§3.1) — single-block records instead of 8-block
//!   trigger+bit-vector regions;
//! * **temporal compactor** (§3.2 / §4.1) — record every loop iteration;
//! * **trap-level separation** (§2.3) — record interrupts inline;
//! * **deep history** (§5.4) — 1K regions instead of 32K;
//! * **multiple SABs** (§4.3) — a single prediction stream;
//! * **preceding blocks** (§5.2) — regions skewed strictly forward.

use serde::{Deserialize, Serialize};

use crate::{pct, Scale, Table};

pub use pif_lab::registry::AblationVariant as Variant;

/// Coverage of each variant on each workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationRow {
    /// Workload name.
    pub workload: String,
    /// Miss coverage per variant, aligned with [`Variant::ALL`].
    pub coverage: Vec<f64>,
}

/// Runs the ablation grid through the `ablation` pif-lab sweep.
pub fn run(scale: &Scale) -> Vec<AblationRow> {
    let report = pif_lab::run_spec(
        &pif_lab::registry::ablation(),
        &pif_lab::RunOptions::new().scale(*scale),
    );
    report
        .workloads
        .iter()
        .map(|w| AblationRow {
            workload: w.clone(),
            coverage: Variant::ALL
                .iter()
                .map(|v| {
                    report
                        .cell(w, Some("PIF"), v.label())
                        .unwrap_or_else(|| panic!("ablation grid missing {w}/{}", v.label()))
                        .expect_metric("miss_coverage")
                })
                .collect(),
        })
        .collect()
}

/// Renders the ablation grid.
pub fn table(rows: &[AblationRow]) -> Table {
    let mut headers = vec!["Workload".to_string()];
    headers.extend(Variant::ALL.iter().map(|v| v.label().to_string()));
    let mut t = Table::new(headers);
    for r in rows {
        let mut cells = vec![r.workload.clone()];
        cells.extend(r.coverage.iter().map(|&v| pct(v)));
        t.row(cells);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use pif_core::PifConfig;

    #[test]
    fn variants_produce_valid_configs() {
        for v in Variant::ALL {
            assert!(v.config().validate().is_ok(), "{} invalid", v.label());
        }
        assert_eq!(Variant::Paper.config(), PifConfig::paper_default());
        assert!(!Variant::NoTrapSeparation.config().separate_trap_levels);
        assert_eq!(
            Variant::NoSpatialRegions.config().geometry.total_blocks(),
            1
        );
    }

    #[test]
    fn ablation_grid_runs_and_paper_design_is_competitive() {
        let rows = run(&Scale::tiny());
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert_eq!(r.coverage.len(), Variant::ALL.len());
            let paper = r.coverage[0];
            for (v, &c) in Variant::ALL.iter().zip(&r.coverage) {
                assert!(
                    (0.0..=1.0).contains(&c),
                    "{}: {} = {c}",
                    r.workload,
                    v.label()
                );
            }
            // The full design should roughly dominate the single-block
            // ablation (spatial regions are the big win).
            assert!(
                paper >= r.coverage[1] - 0.10,
                "{}: paper {paper} vs no-regions {}",
                r.workload,
                r.coverage[1]
            );
        }
        assert_eq!(table(&rows).len(), 6);
    }
}
