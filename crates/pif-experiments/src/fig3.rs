//! Figure 3: spatial region density (left) and discontinuous accesses
//! within spatial regions (right).
//!
//! The characterization uses wide regions (up to 32 blocks, per the
//! figure's 17-32 bucket) over the application (TL0) retire stream.

use serde::{Deserialize, Serialize};

use crate::{pct, Scale, Table};

pub use pif_lab::registry::{DENSITY_BUCKETS, RUN_BUCKETS};

/// One workload's spatial-region characterization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3Row {
    /// Workload name.
    pub workload: String,
    /// Fraction of regions per density bucket (aligned with
    /// [`DENSITY_BUCKETS`]).
    pub density: Vec<f64>,
    /// Fraction of regions per discontinuous-run bucket (aligned with
    /// [`RUN_BUCKETS`]).
    pub runs: Vec<f64>,
    /// Total regions observed.
    pub regions: u64,
}

impl Fig3Row {
    /// Fraction of regions with more than one accessed block (the paper
    /// reports >50%).
    pub fn multi_block_fraction(&self) -> f64 {
        1.0 - self.density.first().copied().unwrap_or(0.0)
    }

    /// Fraction of regions with discontinuous accesses (~1/5 in the
    /// paper).
    pub fn discontinuous_fraction(&self) -> f64 {
        1.0 - self.runs.first().copied().unwrap_or(0.0)
    }
}

/// Runs the Figure 3 characterization (32-block regions, trigger-anchored
/// with the paper's 8-preceding skew scaled up) through the `fig3`
/// pif-lab sweep.
pub fn run(scale: &Scale) -> Vec<Fig3Row> {
    let report = pif_lab::run_spec(
        &pif_lab::registry::fig3(),
        &pif_lab::RunOptions::new().scale(*scale),
    );
    report
        .cells
        .iter()
        .map(|c| Fig3Row {
            workload: c.workload.clone(),
            density: DENSITY_BUCKETS
                .iter()
                .map(|&(lo, hi)| c.expect_metric(&pif_lab::density_metric(lo, hi)))
                .collect(),
            runs: RUN_BUCKETS
                .iter()
                .map(|&(lo, hi)| c.expect_metric(&pif_lab::runs_metric(lo, hi)))
                .collect(),
            regions: c.expect_metric_u64("total_regions"),
        })
        .collect()
}

/// Left chart: density distribution.
pub fn density_table(rows: &[Fig3Row]) -> Table {
    let mut headers = vec!["Workload".to_string()];
    headers.extend(DENSITY_BUCKETS.iter().map(|&(lo, hi)| {
        if lo == hi {
            lo.to_string()
        } else {
            format!("{lo}-{hi}")
        }
    }));
    let mut t = Table::new(headers);
    for r in rows {
        let mut cells = vec![r.workload.clone()];
        cells.extend(r.density.iter().map(|&v| pct(v)));
        t.row(cells);
    }
    t
}

/// Right chart: discontinuous runs distribution.
pub fn runs_table(rows: &[Fig3Row]) -> Table {
    let mut headers = vec!["Workload".to_string()];
    headers.extend(RUN_BUCKETS.iter().map(|&(lo, hi)| {
        if lo == hi {
            lo.to_string()
        } else {
            format!("{lo}-{hi}")
        }
    }));
    let mut t = Table::new(headers);
    for r in rows {
        let mut cells = vec![r.workload.clone()];
        cells.extend(r.runs.iter().map(|&v| pct(v)));
        t.row(cells);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_form_distributions() {
        let rows = run(&Scale::tiny());
        assert_eq!(rows.len(), 6);
        for r in &rows {
            let dsum: f64 = r.density.iter().sum();
            assert!(
                dsum > 0.95 && dsum < 1.01,
                "{}: density sums to {dsum}",
                r.workload
            );
            let rsum: f64 = r.runs.iter().sum();
            assert!(
                rsum > 0.95 && rsum < 1.01,
                "{}: runs sum to {rsum}",
                r.workload
            );
            assert!(r.regions > 0);
        }
        assert_eq!(density_table(&rows).len(), 6);
        assert_eq!(runs_table(&rows).len(), 6);
    }
}
