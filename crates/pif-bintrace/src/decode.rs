//! A small x86-64 instruction-length and control-transfer decoder.
//!
//! CFG recovery only needs two facts per instruction: how long it is
//! and whether it transfers control (and to where, for direct
//! transfers). This module decodes exactly that — legacy/REX/VEX
//! prefixes, the one-byte / `0F` / `0F 38` / `0F 3A` opcode maps with
//! ModRM/SIB/displacement/immediate sizing, and the control-transfer
//! opcodes (`JMP`/`Jcc`/`CALL`/`RET`/`FF /2../5`) — and deliberately
//! nothing more: no operand semantics, no AVX-512 (`EVEX` decodes as an
//! error, ending the block), no 16-bit modes. An undecodable byte
//! sequence is not a failure of the frontend; it simply terminates the
//! enclosing basic block as a dead end, and the walker restarts from a
//! function entry.

/// Architectural maximum instruction length; anything longer is a
/// decode error.
pub const MAX_INSN_LEN: usize = 15;

/// Control-transfer behaviour of one decoded instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ctrl {
    /// Plain instruction: execution falls through.
    None,
    /// `JMP rel8/rel32`: unconditional direct jump.
    Jump {
        /// Jump destination (PC-relative, already resolved).
        target: u64,
    },
    /// `Jcc rel8/rel32` (also `LOOPcc`/`JRCXZ`): conditional branch.
    CondJump {
        /// Taken-path destination.
        target: u64,
    },
    /// `CALL rel32`: direct call.
    Call {
        /// Call destination.
        target: u64,
    },
    /// `JMP r/m64` (`FF /4`, `FF /5`): target known only at run time.
    IndirectJump,
    /// `CALL r/m64` (`FF /2`, `FF /3`): target known only at run time.
    IndirectCall,
    /// `RET` / `RET imm16` (and far returns).
    Return,
    /// Execution cannot continue: `INT3`, `UD2`, `HLT`, `IRET`.
    Halt,
}

/// One decoded instruction: its length and control-transfer class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Insn {
    /// Encoded length in bytes (1..=15).
    pub len: u8,
    /// Control-transfer behaviour.
    pub ctrl: Ctrl,
}

/// Why a byte sequence failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The instruction runs past the end of the available bytes.
    Truncated,
    /// More than [`MAX_INSN_LEN`] bytes of prefixes/operands.
    TooLong,
    /// An opcode this decoder does not model (includes EVEX).
    Unsupported(u8),
}

/// What an opcode needs after the opcode byte itself.
#[derive(Clone, Copy)]
enum Spec {
    /// ModRM byte (with SIB/displacement) iff `modrm`, then `imm`
    /// immediate bytes.
    Simple { modrm: bool, imm: usize },
    /// Relative conditional jump with an `rel`-byte displacement.
    JccRel(usize),
    /// Relative unconditional jump.
    JmpRel(usize),
    /// Relative direct call.
    CallRel(usize),
    /// Near/far return with `imm` immediate bytes.
    Ret(usize),
    /// Block-terminating trap.
    Halt,
    /// `F6`/`F7` group 3: ModRM, immediate only for `/0` and `/1`.
    Grp3 { imm: usize },
    /// `FF` group 5: ModRM; `/2../3` indirect call, `/4../5` indirect
    /// jump.
    Grp5,
    /// Not modelled.
    Unsupported,
}

/// Spec for the one-byte opcode map. `iz` is the operand-size-dependent
/// immediate width (4, or 2 under `66`), `moffs` the address-size width.
fn one_byte_spec(op: u8, iz: usize, moffs: usize, rex_w: bool) -> Spec {
    use Spec::*;
    match op {
        // ALU families: op r/m,r / r,r/m (0..=3), AL,Ib (4), eAX,Iz (5).
        0x00..=0x05
        | 0x08..=0x0d
        | 0x10..=0x15
        | 0x18..=0x1d
        | 0x20..=0x25
        | 0x28..=0x2d
        | 0x30..=0x35
        | 0x38..=0x3d => match op & 7 {
            0..=3 => Simple {
                modrm: true,
                imm: 0,
            },
            4 => Simple {
                modrm: false,
                imm: 1,
            },
            _ => Simple {
                modrm: false,
                imm: iz,
            },
        },
        0x50..=0x5f => Simple {
            modrm: false,
            imm: 0,
        }, // push/pop r64
        0x63 => Simple {
            modrm: true,
            imm: 0,
        }, // movsxd
        0x68 => Simple {
            modrm: false,
            imm: iz,
        }, // push Iz
        0x69 => Simple {
            modrm: true,
            imm: iz,
        }, // imul r, r/m, Iz
        0x6a => Simple {
            modrm: false,
            imm: 1,
        }, // push Ib
        0x6b => Simple {
            modrm: true,
            imm: 1,
        }, // imul r, r/m, Ib
        0x6c..=0x6f => Simple {
            modrm: false,
            imm: 0,
        }, // ins/outs
        0x70..=0x7f => JccRel(1),
        0x80 | 0x83 => Simple {
            modrm: true,
            imm: 1,
        }, // grp1 Ib
        0x81 => Simple {
            modrm: true,
            imm: iz,
        }, // grp1 Iz
        0x84..=0x8f => Simple {
            modrm: true,
            imm: 0,
        }, // test/xchg/mov/lea/pop
        0x90..=0x99 | 0x9b..=0x9f => Simple {
            modrm: false,
            imm: 0,
        }, // nop/xchg/cwde/pushf...
        0xa0..=0xa3 => Simple {
            modrm: false,
            imm: moffs,
        }, // mov moffs
        0xa4..=0xa7 | 0xaa..=0xaf => Simple {
            modrm: false,
            imm: 0,
        }, // string ops
        0xa8 => Simple {
            modrm: false,
            imm: 1,
        }, // test AL, Ib
        0xa9 => Simple {
            modrm: false,
            imm: iz,
        }, // test eAX, Iz
        0xb0..=0xb7 => Simple {
            modrm: false,
            imm: 1,
        }, // mov r8, Ib
        0xb8..=0xbf => Simple {
            modrm: false,
            imm: if rex_w { 8 } else { iz },
        }, // mov r, Iv
        0xc0 | 0xc1 => Simple {
            modrm: true,
            imm: 1,
        }, // shift grp2 Ib
        0xc2 | 0xca => Ret(2), // ret imm16 / retf imm16
        0xc3 | 0xcb => Ret(0), // ret / retf
        0xc6 => Simple {
            modrm: true,
            imm: 1,
        }, // mov r/m8, Ib
        0xc7 => Simple {
            modrm: true,
            imm: iz,
        }, // mov r/m, Iz
        0xc8 => Simple {
            modrm: false,
            imm: 3,
        }, // enter Iw, Ib
        0xc9 => Simple {
            modrm: false,
            imm: 0,
        }, // leave
        0xcc | 0xcf => Halt,   // int3 / iret
        0xcd => Simple {
            modrm: false,
            imm: 1,
        }, // int n (kernel returns; treat as fall-through)
        0xd0..=0xd3 => Simple {
            modrm: true,
            imm: 0,
        }, // shift grp2, CL/1
        0xd7 => Simple {
            modrm: false,
            imm: 0,
        }, // xlat
        0xd8..=0xdf => Simple {
            modrm: true,
            imm: 0,
        }, // x87
        0xe0..=0xe3 => JccRel(1), // loopcc / jrcxz
        0xe4..=0xe7 => Simple {
            modrm: false,
            imm: 1,
        }, // in/out Ib
        0xe8 => CallRel(4),
        0xe9 => JmpRel(4),
        0xeb => JmpRel(1),
        0xec..=0xef => Simple {
            modrm: false,
            imm: 0,
        }, // in/out DX
        0xf1 | 0xf4 => Halt, // int1 / hlt
        0xf5 | 0xf8..=0xfd => Simple {
            modrm: false,
            imm: 0,
        }, // cmc/clc/stc/cli/sti/cld/std
        0xf6 => Grp3 { imm: 1 },
        0xf7 => Grp3 { imm: iz },
        0xfe => Simple {
            modrm: true,
            imm: 0,
        }, // inc/dec r/m8
        0xff => Grp5,
        _ => Unsupported,
    }
}

/// Spec for the two-byte `0F` opcode map.
fn two_byte_spec(op: u8) -> Spec {
    use Spec::*;
    match op {
        0x05..=0x09 | 0x0e | 0x30..=0x37 | 0x77 | 0xa2 | 0xaa => Simple {
            modrm: false,
            imm: 0,
        }, // syscall/clts/sysret/invd/wbinvd/femms/wrmsr..sysexit/emms/cpuid/rsm
        0x0b => Halt, // ud2
        0x70..=0x73 | 0xa4 | 0xac | 0xba | 0xc2 | 0xc4..=0xc6 => Simple {
            modrm: true,
            imm: 1,
        }, // pshuf*/grp12-14/shld/shrd/bt grp8/cmpps/pinsrw/pextrw/shufps
        0x80..=0x8f => JccRel(4),
        0xa0 | 0xa1 | 0xa8 | 0xa9 => Simple {
            modrm: false,
            imm: 0,
        }, // push/pop fs/gs
        0xc8..=0xcf => Simple {
            modrm: false,
            imm: 0,
        }, // bswap
        0x04 | 0x0a | 0x0c | 0x0f | 0x24..=0x27 | 0x36..=0x3f | 0x7a | 0x7b => Unsupported,
        // Everything else in the 0F map takes a ModRM and no immediate:
        // moves, cmov, setcc, SSE arithmetic, fences, movzx/movsx, ...
        _ => Simple {
            modrm: true,
            imm: 0,
        },
    }
}

/// Returns the total ModRM+SIB+displacement length starting at `at`.
fn modrm_len(bytes: &[u8], at: usize) -> Result<usize, DecodeError> {
    let m = *bytes.get(at).ok_or(DecodeError::Truncated)?;
    let (modf, rm) = (m >> 6, m & 7);
    let mut len = 1usize;
    if modf != 3 && rm == 4 {
        let sib = *bytes.get(at + 1).ok_or(DecodeError::Truncated)?;
        len += 1;
        if modf == 0 && sib & 7 == 5 {
            len += 4;
        }
    }
    match modf {
        0 if rm == 5 => len += 4, // RIP-relative disp32
        1 => len += 1,
        2 => len += 4,
        _ => {}
    }
    Ok(len)
}

fn rel_target(bytes: &[u8], at: usize, width: usize, end_pc: u64) -> Result<u64, DecodeError> {
    let rel = match width {
        1 => *bytes.get(at).ok_or(DecodeError::Truncated)? as i8 as i64,
        4 => {
            let b = bytes.get(at..at + 4).ok_or(DecodeError::Truncated)?;
            i32::from_le_bytes([b[0], b[1], b[2], b[3]]) as i64
        }
        _ => unreachable!("relative widths are 1 or 4"),
    };
    Ok(end_pc.wrapping_add(rel as u64))
}

/// Decodes the instruction at `pc`, whose encoding starts at
/// `bytes[0]`.
///
/// Only length and control-transfer class are recovered; `pc` is used
/// to resolve PC-relative branch targets.
pub fn decode(bytes: &[u8], pc: u64) -> Result<Insn, DecodeError> {
    let mut i = 0usize;
    let mut opsize16 = false;
    let mut addr32 = false;
    let mut rex_w = false;

    // Legacy prefixes (group 1-4), in any order and multiplicity.
    loop {
        match bytes.get(i).copied().ok_or(DecodeError::Truncated)? {
            0x26 | 0x2e | 0x36 | 0x3e | 0x64 | 0x65 | 0xf0 | 0xf2 | 0xf3 => i += 1,
            0x66 => {
                opsize16 = true;
                i += 1;
            }
            0x67 => {
                addr32 = true;
                i += 1;
            }
            _ => break,
        }
        if i >= MAX_INSN_LEN {
            return Err(DecodeError::TooLong);
        }
    }

    let mut op = *bytes.get(i).ok_or(DecodeError::Truncated)?;

    // REX.
    if (0x40..=0x4f).contains(&op) {
        rex_w = op & 8 != 0;
        i += 1;
        op = *bytes.get(i).ok_or(DecodeError::Truncated)?;
    }

    let iz = if opsize16 { 2 } else { 4 };
    let moffs = if addr32 { 4 } else { 8 };

    // VEX prefixes re-dispatch into an escape map; VEX encodings never
    // transfer control, so a branch spec under VEX is garbage input.
    let (spec, vex) = if op == 0xc5 {
        let vop = *bytes.get(i + 2).ok_or(DecodeError::Truncated)?;
        i += 3;
        (two_byte_spec(vop), true)
    } else if op == 0xc4 {
        let mmmmm = *bytes.get(i + 1).ok_or(DecodeError::Truncated)? & 0x1f;
        let vop = *bytes.get(i + 3).ok_or(DecodeError::Truncated)?;
        i += 4;
        let spec = match mmmmm {
            1 => two_byte_spec(vop),
            2 => Spec::Simple {
                modrm: true,
                imm: 0,
            },
            3 => Spec::Simple {
                modrm: true,
                imm: 1,
            },
            _ => Spec::Unsupported,
        };
        (spec, true)
    } else if op == 0x0f {
        i += 1;
        let op2 = *bytes.get(i).ok_or(DecodeError::Truncated)?;
        i += 1;
        let spec = match op2 {
            0x38 => {
                i += 1;
                Spec::Simple {
                    modrm: true,
                    imm: 0,
                }
            }
            0x3a => {
                i += 1;
                Spec::Simple {
                    modrm: true,
                    imm: 1,
                }
            }
            _ => two_byte_spec(op2),
        };
        (spec, false)
    } else {
        i += 1;
        (one_byte_spec(op, iz, moffs, rex_w), false)
    };

    let finish = |end: usize, ctrl: Ctrl| -> Result<Insn, DecodeError> {
        if end > MAX_INSN_LEN {
            return Err(DecodeError::TooLong);
        }
        if end > bytes.len() {
            return Err(DecodeError::Truncated);
        }
        Ok(Insn {
            len: end as u8,
            ctrl,
        })
    };

    match spec {
        _ if vex && !matches!(spec, Spec::Simple { .. }) => Err(DecodeError::Unsupported(op)),
        Spec::Simple { modrm, imm } => {
            let m = if modrm { modrm_len(bytes, i)? } else { 0 };
            finish(i + m + imm, Ctrl::None)
        }
        Spec::JccRel(w) | Spec::JmpRel(w) | Spec::CallRel(w) => {
            let end = i + w;
            if end > MAX_INSN_LEN {
                return Err(DecodeError::TooLong);
            }
            let target = rel_target(bytes, i, w, pc.wrapping_add(end as u64))?;
            let ctrl = match spec {
                Spec::JccRel(_) => Ctrl::CondJump { target },
                Spec::JmpRel(_) => Ctrl::Jump { target },
                _ => Ctrl::Call { target },
            };
            finish(end, ctrl)
        }
        Spec::Ret(imm) => finish(i + imm, Ctrl::Return),
        Spec::Halt => finish(i, Ctrl::Halt),
        Spec::Grp3 { imm } => {
            let m = modrm_len(bytes, i)?;
            let reg = (bytes[i] >> 3) & 7;
            let imm = if reg <= 1 { imm } else { 0 };
            finish(i + m + imm, Ctrl::None)
        }
        Spec::Grp5 => {
            let m = modrm_len(bytes, i)?;
            let ctrl = match (bytes[i] >> 3) & 7 {
                2 | 3 => Ctrl::IndirectCall,
                4 | 5 => Ctrl::IndirectJump,
                6 | 0 | 1 => Ctrl::None, // push / inc / dec
                _ => return Err(DecodeError::Unsupported(op)),
            };
            finish(i + m, ctrl)
        }
        Spec::Unsupported => Err(DecodeError::Unsupported(op)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn len_of(bytes: &[u8]) -> usize {
        decode(bytes, 0x1000).expect("decodes").len as usize
    }

    #[test]
    fn plain_instruction_lengths() {
        assert_eq!(len_of(&[0x90]), 1); // nop
        assert_eq!(len_of(&[0x31, 0xc0]), 2); // xor eax, eax
        assert_eq!(len_of(&[0x48, 0x89, 0xe5]), 3); // mov rbp, rsp
        assert_eq!(len_of(&[0x48, 0x83, 0xec, 0x20]), 4); // sub rsp, 0x20
        assert_eq!(len_of(&[0xb8, 0x01, 0x00, 0x00, 0x00]), 5); // mov eax, 1
        assert_eq!(len_of(&[0x48, 0xb8, 0, 0, 0, 0, 0, 0, 0, 0]), 10); // movabs
        assert_eq!(len_of(&[0x66, 0xb8, 0x01, 0x00]), 4); // mov ax, 1
        assert_eq!(len_of(&[0x48, 0x8b, 0x05, 0x04, 0x00, 0x00, 0x00]), 7); // mov rax, [rip+4]
        assert_eq!(len_of(&[0x48, 0x8b, 0x44, 0x24, 0x08]), 5); // mov rax, [rsp+8] (SIB+disp8)
        assert_eq!(len_of(&[0x8b, 0x84, 0x24, 0, 0x01, 0, 0]), 7); // mov eax, [rsp+0x100]
        assert_eq!(len_of(&[0xf3, 0x0f, 0x1e, 0xfa]), 4); // endbr64
        assert_eq!(len_of(&[0x0f, 0x1f, 0x44, 0x00, 0x00]), 5); // 5-byte nop
        assert_eq!(
            len_of(&[0x66, 0x0f, 0x1f, 0x84, 0x00, 0, 0, 0, 0]),
            9 // 9-byte nop
        );
        assert_eq!(len_of(&[0xc5, 0xf8, 0x57, 0xc0]), 4); // vxorps (VEX2)
        assert_eq!(len_of(&[0xc4, 0xe2, 0x79, 0x18, 0xc0]), 5); // vbroadcastss (VEX3)
    }

    #[test]
    fn group3_immediate_depends_on_reg_field() {
        assert_eq!(len_of(&[0xf7, 0xc0, 1, 0, 0, 0]), 6); // test eax, 1  (/0, Iz)
        assert_eq!(len_of(&[0xf7, 0xd8]), 2); // neg eax      (/3, no imm)
        assert_eq!(len_of(&[0xf6, 0xc1, 0x01]), 3); // test cl, 1   (/0, Ib)
    }

    #[test]
    fn direct_branches_resolve_targets() {
        // jmp rel8 at 0x1000: e9 target = 0x1000 + 2 + 0x10.
        assert_eq!(
            decode(&[0xeb, 0x10], 0x1000).unwrap().ctrl,
            Ctrl::Jump { target: 0x1012 }
        );
        // Backwards rel32 call.
        assert_eq!(
            decode(&[0xe8, 0xfb, 0xff, 0xff, 0xff], 0x1000)
                .unwrap()
                .ctrl,
            Ctrl::Call { target: 0x1000 }
        );
        // jne rel8 backwards.
        assert_eq!(
            decode(&[0x75, 0xfe], 0x1000).unwrap().ctrl,
            Ctrl::CondJump { target: 0x1000 }
        );
        // 0F 84 jz rel32 forwards.
        assert_eq!(
            decode(&[0x0f, 0x84, 0x00, 0x01, 0x00, 0x00], 0x1000)
                .unwrap()
                .ctrl,
            Ctrl::CondJump { target: 0x1106 }
        );
    }

    #[test]
    fn indirect_and_returns_classify() {
        assert_eq!(decode(&[0xc3], 0).unwrap().ctrl, Ctrl::Return);
        assert_eq!(
            decode(&[0xc2, 0x08, 0x00], 0).unwrap(),
            Insn {
                len: 3,
                ctrl: Ctrl::Return
            }
        );
        assert_eq!(decode(&[0xff, 0xd0], 0).unwrap().ctrl, Ctrl::IndirectCall); // call rax
        assert_eq!(decode(&[0xff, 0xe0], 0).unwrap().ctrl, Ctrl::IndirectJump); // jmp rax
        assert_eq!(
            decode(&[0xff, 0x25, 0, 0x10, 0, 0], 0).unwrap(),
            Insn {
                len: 6,
                ctrl: Ctrl::IndirectJump
            } // jmp [rip+0x1000]
        );
        assert_eq!(decode(&[0xff, 0xc0], 0).unwrap().ctrl, Ctrl::None); // inc eax
    }

    #[test]
    fn traps_halt_the_block() {
        assert_eq!(decode(&[0xcc], 0).unwrap().ctrl, Ctrl::Halt);
        assert_eq!(decode(&[0x0f, 0x0b], 0).unwrap().ctrl, Ctrl::Halt);
        assert_eq!(decode(&[0xf4], 0).unwrap().ctrl, Ctrl::Halt);
    }

    #[test]
    fn bad_input_is_a_typed_error() {
        assert_eq!(decode(&[], 0), Err(DecodeError::Truncated));
        assert_eq!(decode(&[0xe9, 0x00], 0), Err(DecodeError::Truncated));
        // EVEX prefix byte (0x62) is invalid in our 64-bit subset.
        assert_eq!(
            decode(&[0x62, 0xf1, 0x7c, 0x48, 0x58, 0xc2], 0),
            Err(DecodeError::Unsupported(0x62))
        );
        // A wall of prefixes exceeds the architectural limit.
        assert_eq!(decode(&[0x66; 16], 0), Err(DecodeError::TooLong));
    }

    #[test]
    fn decode_never_panics_on_arbitrary_bytes() {
        // Cheap exhaustive fuzz over short prefixes of a fixed pattern:
        // every 2-byte opcode head with a plausible tail.
        let tail = [0x24, 0x8d, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07];
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                let mut buf = vec![a, b];
                buf.extend_from_slice(&tail);
                let _ = decode(&buf, 0xdead_0000);
            }
        }
    }
}
