//! A deterministic, hand-assembled demo ELF for tests, goldens, and
//! CI smoke runs.
//!
//! The binary is tiny but exercises every CFG-recovery case the
//! decoder models: a call/return pair, a counted loop (conditional
//! branch), a RIP-relative load, a jump over padding (fall-through
//! split), and an indirect jump that dead-ends the static walk. The
//! bytes are assembled in code — no toolchain involvement — so the
//! fixture is bit-identical everywhere, which is what lets a committed
//! golden gate the full `gen-elf -> record-elf -> piflab` pipeline.

/// Virtual address of the demo's code.
pub const DEMO_BASE: u64 = 0x40_0200;

/// Entry point (`f_main`).
pub const DEMO_ENTRY: u64 = DEMO_BASE + 0x20;

const CODE_FILE_OFF: u64 = 0x200;

fn put_u16(buf: &mut [u8], off: usize, v: u16) {
    buf[off..off + 2].copy_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut [u8], off: usize, v: u32) {
    buf[off..off + 4].copy_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut [u8], off: usize, v: u64) {
    buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

/// The demo's `.text` bytes (64 bytes, `INT3`-padded).
fn code() -> Vec<u8> {
    let mut c = vec![0xcc; 0x40];
    // f_leaf @ +0x00: inc rax; ret
    c[0x00..0x04].copy_from_slice(&[0x48, 0xff, 0xc0, 0xc3]);
    // f_loop @ +0x10:
    //   mov ecx, 4
    //   loop: call f_leaf
    //   dec ecx
    //   jne loop
    //   ret
    c[0x10..0x1f].copy_from_slice(&[
        0xb9, 0x04, 0x00, 0x00, 0x00, // mov ecx, 4
        0xe8, 0xe6, 0xff, 0xff, 0xff, // call -0x1a -> f_leaf
        0xff, 0xc9, // dec ecx
        0x75, 0xf7, // jne -9 -> the call
        0xc3, // ret
    ]);
    // f_main @ +0x20 (entry):
    //   call f_loop
    //   mov rax, [rip+4]
    //   jmp +2 (over padding)
    //   (int3 padding)
    //   jmp [rip+0x1000]        ; indirect -> dead end
    c[0x20..0x36].copy_from_slice(&[
        0xe8, 0xeb, 0xff, 0xff, 0xff, // call -0x15 -> f_loop
        0x48, 0x8b, 0x05, 0x04, 0x00, 0x00, 0x00, // mov rax, [rip+4]
        0xeb, 0x02, // jmp over the padding
        0xcc, 0xcc, // padding (never executed)
        0xff, 0x25, 0x00, 0x10, 0x00, 0x00, // jmp [rip+0x1000]
    ]);
    c
}

/// Builds the complete demo ELF image.
pub fn demo_elf() -> Vec<u8> {
    let code = code();
    let strtab = b"\0f_leaf\0f_loop\0f_main\0".to_vec();
    let shstrtab = b"\0.text\0.symtab\0.strtab\0.shstrtab\0".to_vec();

    // Symbol table: null + three function symbols.
    let syms: &[(u32, u64, u64)] = &[
        (1, DEMO_BASE, 4),         // f_leaf
        (8, DEMO_BASE + 0x10, 15), // f_loop
        (15, DEMO_ENTRY, 22),      // f_main
    ];
    let mut symtab = vec![0u8; 24];
    for &(name, value, size) in syms {
        let mut s = vec![0u8; 24];
        put_u32(&mut s, 0, name);
        s[4] = 0x12; // GLOBAL | FUNC
        put_u16(&mut s, 6, 1); // .text
        put_u64(&mut s, 8, value);
        put_u64(&mut s, 16, size);
        symtab.extend_from_slice(&s);
    }

    let symtab_off = CODE_FILE_OFF as usize + code.len();
    let strtab_off = symtab_off + symtab.len();
    let shstrtab_off = strtab_off + strtab.len();
    let shoff = (shstrtab_off + shstrtab.len() + 7) & !7;
    let total = shoff + 5 * 64;

    let mut elf = vec![0u8; total];
    // ELF header.
    elf[..4].copy_from_slice(b"\x7fELF");
    elf[4] = 2; // ELFCLASS64
    elf[5] = 1; // ELFDATA2LSB
    elf[6] = 1; // EV_CURRENT
    put_u16(&mut elf, 16, 2); // ET_EXEC
    put_u16(&mut elf, 18, 62); // EM_X86_64
    put_u32(&mut elf, 20, 1);
    put_u64(&mut elf, 24, DEMO_ENTRY);
    put_u64(&mut elf, 32, 64); // e_phoff
    put_u64(&mut elf, 40, shoff as u64);
    put_u16(&mut elf, 52, 64); // e_ehsize
    put_u16(&mut elf, 54, 56); // e_phentsize
    put_u16(&mut elf, 56, 1); // e_phnum
    put_u16(&mut elf, 58, 64); // e_shentsize
    put_u16(&mut elf, 60, 5); // e_shnum
    put_u16(&mut elf, 62, 4); // e_shstrndx

    // One executable PT_LOAD.
    let ph = 64;
    put_u32(&mut elf, ph, 1); // PT_LOAD
    put_u32(&mut elf, ph + 4, 5); // PF_R | PF_X
    put_u64(&mut elf, ph + 8, CODE_FILE_OFF);
    put_u64(&mut elf, ph + 16, DEMO_BASE);
    put_u64(&mut elf, ph + 24, DEMO_BASE);
    put_u64(&mut elf, ph + 32, code.len() as u64);
    put_u64(&mut elf, ph + 40, code.len() as u64);
    put_u64(&mut elf, ph + 48, 0x1000);

    // Payloads.
    elf[CODE_FILE_OFF as usize..symtab_off].copy_from_slice(&code);
    elf[symtab_off..strtab_off].copy_from_slice(&symtab);
    elf[strtab_off..strtab_off + strtab.len()].copy_from_slice(&strtab);
    elf[shstrtab_off..shstrtab_off + shstrtab.len()].copy_from_slice(&shstrtab);

    // Section headers: NULL, .text, .symtab, .strtab, .shstrtab.
    let sh = |idx: usize,
              name: u32,
              ty: u32,
              flags: u64,
              addr: u64,
              off: usize,
              size: usize,
              link: u32,
              entsize: u64,
              elf: &mut [u8]| {
        let s = shoff + idx * 64;
        put_u32(elf, s, name);
        put_u32(elf, s + 4, ty);
        put_u64(elf, s + 8, flags);
        put_u64(elf, s + 16, addr);
        put_u64(elf, s + 24, off as u64);
        put_u64(elf, s + 32, size as u64);
        put_u32(elf, s + 40, link);
        put_u64(elf, s + 56, entsize);
    };
    sh(
        1,
        1,
        1, // SHT_PROGBITS
        6, // ALLOC | EXECINSTR
        DEMO_BASE,
        CODE_FILE_OFF as usize,
        code.len(),
        0,
        0,
        &mut elf,
    );
    sh(
        2,
        7,
        2, // SHT_SYMTAB
        0,
        0,
        symtab_off,
        symtab.len(),
        3, // link -> .strtab
        24,
        &mut elf,
    );
    sh(3, 15, 3, 0, 0, strtab_off, strtab.len(), 0, 0, &mut elf);
    sh(4, 23, 3, 0, 0, shstrtab_off, shstrtab.len(), 0, 0, &mut elf);
    elf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_is_deterministic() {
        assert_eq!(demo_elf(), demo_elf());
    }

    #[test]
    fn fixture_header_fields() {
        let e = demo_elf();
        assert_eq!(&e[..4], b"\x7fELF");
        assert_eq!(u16::from_le_bytes([e[18], e[19]]), 62);
    }
}
