//! A seeded walker that replays a recovered [`Cfg`] as a
//! [`RetiredInstr`] stream.
//!
//! The walker is the bridge between static CFG recovery and the
//! simulator's dynamic trace contract: it emits a coherent retire-order
//! stream (every branch's actual target is the next PC; every
//! non-branch falls through) over the *real* code layout of the binary.
//! Dynamic decisions the static CFG cannot answer are made by a seeded
//! RNG:
//!
//! - **Conditional branches** draw from a per-branch bias table: each
//!   branch address hashes (with the seed) to a stable taken
//!   probability, so individual branches are strongly biased — as real
//!   branches are — while different seeds produce different biases.
//! - **Indirect calls and jumps** pick a uniformly random function
//!   start, modelling virtual dispatch / PLT fan-out.
//! - **Returns** pop a real bounded return-address stack, so call/return
//!   pairing (and therefore return-address locality) matches the code.
//! - **Dead ends** (traps, undecodable bytes, targets outside the
//!   image) restart at a random function start via a synthetic direct
//!   branch, keeping the stream coherent.
//! - Optional **trap injection** interrupts the TL0 stream at seeded
//!   geometric intervals and walks a random function at [`TrapLevel::Tl1`]
//!   for a fixed burst, mirroring the synthetic executor's OS noise.
//!
//! Determinism contract: the emitted stream is a pure function of
//! `(ELF bytes, WalkConfig)`. The RNG is consumed once per dynamic
//! decision, never per emitted instruction, so a prefix of the stream
//! does not depend on how many instructions are ultimately taken.

use std::sync::Arc;

use rand::{rngs::SmallRng, Rng, SeedableRng};

use pif_types::{Address, BranchInfo, BranchKind, RetiredInstr, TrapLevel};

use crate::cfg::{Cfg, Terminator};

/// Dynamic-behaviour knobs for a [`Walker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkConfig {
    /// Seed for every dynamic decision (branch directions, indirect
    /// targets, interrupt arrivals).
    pub seed: u64,
    /// Mean TL0 instructions between injected TL1 interrupts
    /// (geometric inter-arrival); 0 disables trap injection.
    pub interrupt_mean_interval: u64,
    /// Instructions emitted per TL1 handler burst.
    pub handler_instrs: u64,
    /// Return-address-stack depth; the oldest entry is dropped on
    /// overflow, modelling a finite hardware RAS.
    pub ras_depth: usize,
}

impl Default for WalkConfig {
    fn default() -> Self {
        WalkConfig {
            seed: 0,
            interrupt_mean_interval: 0,
            handler_instrs: 48,
            ras_depth: 64,
        }
    }
}

impl WalkConfig {
    /// Sets the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables TL1 trap injection with the given mean interval.
    #[must_use]
    pub fn with_interrupts(mut self, mean_interval: u64) -> Self {
        self.interrupt_mean_interval = mean_interval;
        self
    }
}

/// Why a walker could not be built.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalkError {
    /// The CFG holds no function start with decodable code.
    NoUsableCode,
}

impl std::fmt::Display for WalkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalkError::NoUsableCode => {
                write!(f, "CFG has no function start with decodable code")
            }
        }
    }
}

impl std::error::Error for WalkError {}

/// Position inside the CFG: a block and an instruction index in it.
#[derive(Debug, Clone, Copy)]
struct Cursor {
    block: u64,
    idx: usize,
}

/// Saved TL0 context while a TL1 handler burst runs.
struct SavedContext {
    cur: Cursor,
    ras: Vec<u64>,
}

/// An infinite, deterministic [`RetiredInstr`] iterator over a [`Cfg`].
///
/// Cap it with [`Iterator::take`]; the stream prefix is independent of
/// the cap.
pub struct Walker {
    cfg: Arc<Cfg>,
    conf: WalkConfig,
    rng: SmallRng,
    cur: Cursor,
    ras: Vec<u64>,
    trap: TrapLevel,
    saved: Option<SavedContext>,
    handler_left: u64,
    until_interrupt: u64,
}

/// SplitMix64 finaliser: the per-branch bias hash.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Geometric inter-arrival sample with the given mean (>= 1).
fn geometric(rng: &mut SmallRng, mean: f64) -> u64 {
    let u: f64 = rng.gen::<f64>().max(1e-12);
    ((-u.ln() * mean).ceil() as u64).max(1)
}

impl Walker {
    /// Builds a walker over `cfg`.
    pub fn new(cfg: Arc<Cfg>, conf: WalkConfig) -> Result<Walker, WalkError> {
        if cfg.func_starts.is_empty() {
            return Err(WalkError::NoUsableCode);
        }
        let mut rng = SmallRng::seed_from_u64(conf.seed);
        let until_interrupt = if conf.interrupt_mean_interval > 0 {
            geometric(&mut rng, conf.interrupt_mean_interval as f64)
        } else {
            0
        };
        // Start at the entry point when it has code, else the first
        // usable function.
        let start = if cfg
            .blocks
            .get(&cfg.entry)
            .is_some_and(|b| !b.insns.is_empty())
        {
            cfg.entry
        } else {
            cfg.func_starts[0]
        };
        Ok(Walker {
            cur: Cursor {
                block: start,
                idx: 0,
            },
            cfg,
            conf,
            rng,
            ras: Vec::new(),
            trap: TrapLevel::Tl0,
            saved: None,
            handler_left: 0,
            until_interrupt,
        })
    }

    /// True when `addr` starts a block that holds at least one
    /// instruction.
    fn usable(&self, addr: u64) -> bool {
        self.cfg
            .blocks
            .get(&addr)
            .is_some_and(|b| !b.insns.is_empty())
    }

    /// A random usable function start (the restart / indirect-target
    /// pool).
    fn random_func(&mut self) -> u64 {
        let n = self.cfg.func_starts.len();
        self.cfg.func_starts[self.rng.gen_range(0..n)]
    }

    /// Resolves a transfer target to a usable block leader, redirecting
    /// unmapped or empty targets to a random function start.
    fn resolve(&mut self, addr: u64) -> u64 {
        if self.usable(addr) {
            addr
        } else {
            self.random_func()
        }
    }

    /// Stable taken-probability for the conditional branch at `pc`:
    /// most branches are strongly biased one way, a property of real
    /// code the bias table reproduces per (branch, seed).
    fn bias(&self, pc: u64) -> f64 {
        let h = mix64(pc ^ mix64(self.conf.seed ^ 0xb1a5)); // bias domain
        0.05 + 0.90 * (h >> 11) as f64 / (1u64 << 53) as f64
    }

    fn push_ras(&mut self, ret: u64) {
        if self.ras.len() == self.conf.ras_depth {
            self.ras.remove(0);
        }
        self.ras.push(ret);
    }

    /// Enters a TL1 handler burst, saving the TL0 context.
    fn enter_handler(&mut self) {
        let handler = self.random_func();
        let saved = SavedContext {
            cur: self.cur,
            ras: std::mem::take(&mut self.ras),
        };
        self.saved = Some(saved);
        self.cur = Cursor {
            block: handler,
            idx: 0,
        };
        self.trap = TrapLevel::Tl1;
        self.handler_left = self.conf.handler_instrs.max(1);
        self.until_interrupt = geometric(&mut self.rng, self.conf.interrupt_mean_interval as f64);
    }

    /// Leaves the handler, restoring the TL0 context.
    fn leave_handler(&mut self) {
        let saved = self.saved.take().expect("leave_handler only inside one");
        self.cur = saved.cur;
        self.ras = saved.ras;
        self.trap = TrapLevel::Tl0;
    }
}

impl Iterator for Walker {
    type Item = RetiredInstr;

    fn next(&mut self) -> Option<RetiredInstr> {
        if self.trap == TrapLevel::Tl1 && self.handler_left == 0 {
            self.leave_handler();
        }
        if self.trap == TrapLevel::Tl0 && self.conf.interrupt_mean_interval > 0 {
            if self.until_interrupt > 1 {
                self.until_interrupt -= 1;
            } else {
                self.enter_handler();
            }
        }
        if self.trap == TrapLevel::Tl1 {
            self.handler_left -= 1;
        }

        let block = &self.cfg.blocks[&self.cur.block];
        let (pc, len) = block.insns[self.cur.idx];
        let fall = pc + len as u64;
        let last = self.cur.idx + 1 == block.insns.len();

        if !last {
            self.cur.idx += 1;
            return Some(RetiredInstr::simple(Address::new(pc), self.trap));
        }

        let term = block.term;
        // Decide the successor and the branch record together so the
        // stream stays coherent even when a static target has to be
        // redirected.
        let (branch, next) = match term {
            Terminator::FallThrough { next } if self.usable(next) => (None, next),
            // A fall-through into unmapped bytes (or any dead end) is
            // represented as a synthetic direct branch to the restart
            // point — the only way to keep the stream coherent.
            Terminator::FallThrough { .. } | Terminator::DeadEnd => {
                let target = self.random_func();
                (
                    Some(BranchInfo {
                        kind: BranchKind::Direct,
                        taken: true,
                        taken_target: Address::new(target),
                        fall_through: Address::new(fall),
                    }),
                    target,
                )
            }
            Terminator::Jump { target } => {
                let target = self.resolve(target);
                (
                    Some(BranchInfo {
                        kind: BranchKind::Direct,
                        taken: true,
                        taken_target: Address::new(target),
                        fall_through: Address::new(fall),
                    }),
                    target,
                )
            }
            Terminator::CondJump { target, fall: ft } => {
                debug_assert_eq!(ft, fall);
                let target = self.resolve(target);
                let taken = if self.usable(ft) {
                    let p = self.bias(pc);
                    self.rng.gen_bool(p)
                } else {
                    true
                };
                (
                    Some(BranchInfo {
                        kind: BranchKind::Conditional,
                        taken,
                        taken_target: Address::new(target),
                        fall_through: Address::new(fall),
                    }),
                    if taken { target } else { ft },
                )
            }
            Terminator::Call { target, ret } => {
                let target = self.resolve(target);
                self.push_ras(ret);
                (
                    Some(BranchInfo {
                        kind: BranchKind::Call,
                        taken: true,
                        taken_target: Address::new(target),
                        fall_through: Address::new(fall),
                    }),
                    target,
                )
            }
            Terminator::IndirectCall { ret } => {
                let target = self.random_func();
                self.push_ras(ret);
                (
                    Some(BranchInfo {
                        kind: BranchKind::IndirectCall,
                        taken: true,
                        taken_target: Address::new(target),
                        fall_through: Address::new(fall),
                    }),
                    target,
                )
            }
            // Tail-call approximation: an indirect jump transfers to a
            // random function without touching the RAS. Modelled as
            // `Direct` (no RAS effect; see README for the limit).
            Terminator::IndirectJump => {
                let target = self.random_func();
                (
                    Some(BranchInfo {
                        kind: BranchKind::Direct,
                        taken: true,
                        taken_target: Address::new(target),
                        fall_through: Address::new(fall),
                    }),
                    target,
                )
            }
            Terminator::Return => {
                let target = match self.ras.pop() {
                    Some(ret) if self.usable(ret) => ret,
                    _ => self.random_func(),
                };
                (
                    Some(BranchInfo {
                        kind: BranchKind::Return,
                        taken: true,
                        taken_target: Address::new(target),
                        fall_through: Address::new(fall),
                    }),
                    target,
                )
            }
        };

        self.cur = Cursor {
            block: next,
            idx: 0,
        };
        let instr = match branch {
            Some(info) => RetiredInstr::branch(Address::new(pc), self.trap, info),
            None => RetiredInstr::simple(Address::new(pc), self.trap),
        };
        Some(instr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;
    use crate::elf::ElfImage;
    use crate::fixture;

    fn demo_cfg() -> Arc<Cfg> {
        let bytes = fixture::demo_elf();
        let image = ElfImage::parse(&bytes).expect("fixture parses");
        Arc::new(Cfg::recover(&image))
    }

    fn walk(seed: u64, n: usize) -> Vec<RetiredInstr> {
        let conf = WalkConfig::default().with_seed(seed);
        Walker::new(demo_cfg(), conf)
            .expect("walker builds")
            .take(n)
            .collect()
    }

    #[test]
    fn same_seed_same_stream() {
        assert_eq!(walk(7, 20_000), walk(7, 20_000));
    }

    #[test]
    fn different_seeds_diverge() {
        assert_ne!(walk(1, 5_000), walk(2, 5_000));
    }

    #[test]
    fn prefix_is_independent_of_length() {
        let short = walk(3, 2_000);
        let long = walk(3, 8_000);
        assert_eq!(short[..], long[..2_000]);
    }

    #[test]
    fn stream_is_coherent() {
        let trace = walk(11, 50_000);
        for w in trace.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            if a.trap_level != b.trap_level {
                continue; // interrupt entry/exit is asynchronous
            }
            match a.branch {
                Some(info) => assert_eq!(
                    info.actual_target(),
                    b.pc,
                    "branch at {} does not reach next pc {}",
                    a.pc,
                    b.pc
                ),
                None => {
                    // Non-branch: the next record is the next
                    // instruction (variable length, so just assert
                    // forward adjacency within 15 bytes).
                    let delta = b.pc.raw().wrapping_sub(a.pc.raw());
                    assert!(
                        (1..=15).contains(&delta),
                        "non-branch at {} jumps to {}",
                        a.pc,
                        b.pc
                    );
                }
            }
        }
    }

    #[test]
    fn coherent_with_trap_injection() {
        let conf = WalkConfig::default().with_seed(5).with_interrupts(700);
        let trace: Vec<RetiredInstr> = Walker::new(demo_cfg(), conf)
            .expect("walker builds")
            .take(30_000)
            .collect();
        let tl1 = trace
            .iter()
            .filter(|i| i.trap_level == TrapLevel::Tl1)
            .count();
        assert!(tl1 > 0, "interrupts must fire");
        assert!(tl1 < trace.len() / 2, "handler bursts must be bounded");
        for w in trace.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            if a.trap_level != b.trap_level {
                continue;
            }
            if let Some(info) = a.branch {
                assert_eq!(info.actual_target(), b.pc);
            }
        }
    }

    #[test]
    fn interrupts_disabled_yields_pure_tl0() {
        assert!(walk(9, 10_000)
            .iter()
            .all(|i| i.trap_level == TrapLevel::Tl0));
    }

    #[test]
    fn calls_and_returns_pair_up() {
        let trace = walk(13, 50_000);
        let mut stack = Vec::new();
        let mut paired = 0usize;
        for i in &trace {
            if let Some(info) = i.branch {
                match info.kind {
                    BranchKind::Call | BranchKind::IndirectCall => {
                        stack.push(info.fall_through);
                        if stack.len() > 64 {
                            stack.remove(0);
                        }
                    }
                    BranchKind::Return => {
                        paired += usize::from(stack.pop() == Some(info.taken_target));
                    }
                    _ => {}
                }
            }
        }
        assert!(paired > 0, "some returns must pop their matching call");
    }

    #[test]
    fn empty_cfg_is_an_error() {
        let cfg = Arc::new(Cfg {
            blocks: Default::default(),
            func_starts: Vec::new(),
            entry: 0,
        });
        assert_eq!(
            Walker::new(cfg, WalkConfig::default()).err(),
            Some(WalkError::NoUsableCode)
        );
    }
}
