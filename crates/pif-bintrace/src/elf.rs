//! Minimal ELF64 loader: executable `PT_LOAD` segments plus function
//! starts from the symbol tables.
//!
//! This is deliberately not a general-purpose ELF library. It reads
//! exactly what CFG recovery needs — the bytes of the executable
//! segments at their virtual addresses, the entry point, and the
//! `STT_FUNC` symbol values from `.symtab`/`.dynsym` — and nothing
//! else. Relocation, dynamic linking, notes, and DWARF are all out of
//! scope: the walker replays control flow over the *static* layout of
//! one object, which is what the instruction-streaming experiments
//! care about.

use std::fmt;
use std::path::Path;

/// Why an ELF image failed to parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElfError {
    /// The file does not start with `\x7fELF`.
    BadMagic,
    /// Not a little-endian ELF64 (class 2, data 1).
    UnsupportedFormat,
    /// `e_machine` is not `EM_X86_64` (62).
    NotX86_64,
    /// A header table or referenced payload lies outside the file.
    Truncated(&'static str),
    /// The image has no executable `PT_LOAD` segment.
    NoCode,
}

impl fmt::Display for ElfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElfError::BadMagic => write!(f, "not an ELF file (bad magic)"),
            ElfError::UnsupportedFormat => write!(f, "not a little-endian ELF64 object"),
            ElfError::NotX86_64 => write!(f, "not an x86-64 object (e_machine != 62)"),
            ElfError::Truncated(what) => write!(f, "truncated ELF: {what} out of bounds"),
            ElfError::NoCode => write!(f, "no executable PT_LOAD segment"),
        }
    }
}

impl std::error::Error for ElfError {}

/// One executable `PT_LOAD` segment: its mapped virtual address range
/// and the file-backed bytes.
#[derive(Debug, Clone)]
pub struct Segment {
    /// Virtual address of the first byte.
    pub vaddr: u64,
    /// File-backed contents (`p_filesz` bytes; any `.bss` tail is not
    /// code and is dropped).
    pub data: Vec<u8>,
}

impl Segment {
    /// Returns the bytes from `addr` to the end of the segment, or
    /// `None` if `addr` is outside it.
    pub fn slice_from(&self, addr: u64) -> Option<&[u8]> {
        let off = addr.checked_sub(self.vaddr)?;
        self.data.get(off as usize..)
    }
}

/// A parsed ELF64 executable or shared object: executable segments,
/// entry point, and function start addresses.
#[derive(Debug, Clone)]
pub struct ElfImage {
    /// `e_entry` (may be 0 for shared objects).
    pub entry: u64,
    /// Executable `PT_LOAD` segments, sorted by `vaddr`.
    pub segments: Vec<Segment>,
    /// `STT_FUNC` symbol values that land inside an executable segment,
    /// sorted and deduplicated. Falls back to `[entry]` when the image
    /// is fully stripped.
    pub func_starts: Vec<u64>,
}

const PT_LOAD: u32 = 1;
const PF_X: u32 = 1;
const SHT_SYMTAB: u32 = 2;
const SHT_DYNSYM: u32 = 11;
const STT_FUNC: u8 = 2;

fn u16_at(b: &[u8], off: usize) -> Option<u16> {
    b.get(off..off + 2)
        .map(|s| u16::from_le_bytes([s[0], s[1]]))
}

fn u32_at(b: &[u8], off: usize) -> Option<u32> {
    b.get(off..off + 4)
        .map(|s| u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
}

fn u64_at(b: &[u8], off: usize) -> Option<u64> {
    b.get(off..off + 8)
        .map(|s| u64::from_le_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]]))
}

impl ElfImage {
    /// Parses an ELF64 image from its raw bytes.
    pub fn parse(bytes: &[u8]) -> Result<ElfImage, ElfError> {
        if bytes.len() < 64 || &bytes[..4] != b"\x7fELF" {
            return Err(ElfError::BadMagic);
        }
        // EI_CLASS = ELFCLASS64, EI_DATA = ELFDATA2LSB.
        if bytes[4] != 2 || bytes[5] != 1 {
            return Err(ElfError::UnsupportedFormat);
        }
        if u16_at(bytes, 18) != Some(62) {
            return Err(ElfError::NotX86_64);
        }
        let entry = u64_at(bytes, 24).ok_or(ElfError::Truncated("e_entry"))?;
        let phoff = u64_at(bytes, 32).ok_or(ElfError::Truncated("e_phoff"))? as usize;
        let shoff = u64_at(bytes, 40).ok_or(ElfError::Truncated("e_shoff"))? as usize;
        let phentsize = u16_at(bytes, 54).ok_or(ElfError::Truncated("e_phentsize"))? as usize;
        let phnum = u16_at(bytes, 56).ok_or(ElfError::Truncated("e_phnum"))? as usize;
        let shentsize = u16_at(bytes, 58).ok_or(ElfError::Truncated("e_shentsize"))? as usize;
        let shnum = u16_at(bytes, 60).ok_or(ElfError::Truncated("e_shnum"))? as usize;

        let mut segments = Vec::new();
        for i in 0..phnum {
            let ph = phoff + i * phentsize;
            let p_type = u32_at(bytes, ph).ok_or(ElfError::Truncated("program header"))?;
            let p_flags = u32_at(bytes, ph + 4).ok_or(ElfError::Truncated("program header"))?;
            if p_type != PT_LOAD || p_flags & PF_X == 0 {
                continue;
            }
            let p_offset = u64_at(bytes, ph + 8).ok_or(ElfError::Truncated("p_offset"))? as usize;
            let vaddr = u64_at(bytes, ph + 16).ok_or(ElfError::Truncated("p_vaddr"))?;
            let filesz = u64_at(bytes, ph + 32).ok_or(ElfError::Truncated("p_filesz"))? as usize;
            let data = bytes
                .get(p_offset..p_offset.saturating_add(filesz))
                .ok_or(ElfError::Truncated("segment payload"))?
                .to_vec();
            segments.push(Segment { vaddr, data });
        }
        if segments.is_empty() {
            return Err(ElfError::NoCode);
        }
        segments.sort_by_key(|s| s.vaddr);

        let mut func_starts = Vec::new();
        for i in 0..shnum {
            let sh = shoff + i * shentsize;
            let sh_type = match u32_at(bytes, sh + 4) {
                Some(t) => t,
                // Tolerate a truncated/absent section table: symbols are
                // an enrichment, not a requirement.
                None => break,
            };
            if sh_type != SHT_SYMTAB && sh_type != SHT_DYNSYM {
                continue;
            }
            let sh_offset =
                u64_at(bytes, sh + 24).ok_or(ElfError::Truncated("sh_offset"))? as usize;
            let sh_size = u64_at(bytes, sh + 32).ok_or(ElfError::Truncated("sh_size"))? as usize;
            let sh_entsize =
                u64_at(bytes, sh + 56).ok_or(ElfError::Truncated("sh_entsize"))? as usize;
            if sh_entsize < 24 {
                continue;
            }
            let table = bytes
                .get(sh_offset..sh_offset.saturating_add(sh_size))
                .ok_or(ElfError::Truncated("symbol table"))?;
            for sym in table.chunks_exact(sh_entsize) {
                let info = sym[4];
                let value = u64_at(sym, 8).unwrap_or(0);
                if info & 0xf == STT_FUNC && value != 0 {
                    func_starts.push(value);
                }
            }
        }
        let image = ElfImage {
            entry,
            segments,
            func_starts: Vec::new(),
        };
        let mut func_starts: Vec<u64> = func_starts
            .into_iter()
            .filter(|&a| image.slice_at(a).is_some())
            .collect();
        if entry != 0 && image.slice_at(entry).is_some() {
            func_starts.push(entry);
        }
        func_starts.sort_unstable();
        func_starts.dedup();
        if func_starts.is_empty() {
            return Err(ElfError::NoCode);
        }
        Ok(ElfImage {
            func_starts,
            ..image
        })
    }

    /// Reads and parses an ELF file from disk.
    pub fn from_file(path: impl AsRef<Path>) -> Result<ElfImage, crate::BintraceError> {
        let bytes = std::fs::read(path.as_ref()).map_err(crate::BintraceError::Io)?;
        ElfImage::parse(&bytes).map_err(crate::BintraceError::Elf)
    }

    /// Returns the code bytes from `addr` to the end of its segment, or
    /// `None` when `addr` is not inside any executable segment.
    pub fn slice_at(&self, addr: u64) -> Option<&[u8]> {
        // Segments are sorted; find the last one starting at or below addr.
        let idx = self.segments.partition_point(|s| s.vaddr <= addr);
        let seg = &self.segments[..idx];
        let slice = seg.last()?.slice_from(addr)?;
        if slice.is_empty() {
            None
        } else {
            Some(slice)
        }
    }

    /// Total executable bytes across all segments.
    pub fn code_bytes(&self) -> usize {
        self.segments.iter().map(|s| s.data.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_non_elf() {
        assert!(matches!(
            ElfImage::parse(b"not an elf"),
            Err(ElfError::BadMagic)
        ));
        assert!(matches!(
            ElfImage::parse(&[0x7f, b'E']),
            Err(ElfError::BadMagic)
        ));
    }

    #[test]
    fn rejects_elf32() {
        let mut bytes = vec![0u8; 64];
        bytes[..4].copy_from_slice(b"\x7fELF");
        bytes[4] = 1; // ELFCLASS32
        bytes[5] = 1;
        assert!(matches!(
            ElfImage::parse(&bytes),
            Err(ElfError::UnsupportedFormat)
        ));
    }

    #[test]
    fn parses_demo_fixture() {
        let bytes = crate::fixture::demo_elf();
        let image = ElfImage::parse(&bytes).expect("fixture parses");
        assert_eq!(image.entry, crate::fixture::DEMO_ENTRY);
        assert_eq!(image.segments.len(), 1);
        // f_leaf, f_loop, f_main (= entry).
        assert_eq!(image.func_starts.len(), 3);
        assert!(image.func_starts.contains(&image.entry));
        // Code bytes are readable at their virtual addresses.
        let code = image.slice_at(image.entry).expect("entry is mapped");
        assert!(!code.is_empty());
        assert!(image.slice_at(0x10).is_none());
    }
}
