//! Real-binary trace frontend: turns compiled ELF64 x86-64 binaries
//! into deterministic [`RetiredInstr`](pif_types::RetiredInstr)
//! streams.
//!
//! FerdmanKF11's argument rests on the instruction-fetch behaviour of
//! real server code layouts; this crate supplies those layouts without
//! a full-system simulator. The pipeline has three stages:
//!
//! 1. [`elf::ElfImage`] — a minimal, dependency-free ELF64 loader:
//!    executable `PT_LOAD` segments plus `STT_FUNC` symbols as function
//!    starts.
//! 2. [`cfg::Cfg`] — basic-block discovery and CFG recovery by sweeping
//!    a small x86-64 length/control-transfer decoder ([`decode`]) from
//!    every function start.
//! 3. [`walk::Walker`] — a seeded walker over the CFG with a real
//!    return-address stack, per-branch bias tables, and optional TL1
//!    trap injection, emitting a coherent retire-order stream through
//!    the standard `InstrSource` iterator contract.
//!
//! The emitted stream is a pure function of the ELF bytes and the
//! [`walk::WalkConfig`] — same binary, same seed, same stream — which
//! is what makes recorded traces reproducible and CI-gateable.
//!
//! # Example
//!
//! ```
//! use pif_bintrace::{cfg::Cfg, elf::ElfImage, fixture, walk::{WalkConfig, Walker}};
//! use std::sync::Arc;
//!
//! let image = ElfImage::parse(&fixture::demo_elf()).unwrap();
//! let cfg = Arc::new(Cfg::recover(&image));
//! let instrs: Vec<_> = Walker::new(cfg, WalkConfig::default().with_seed(42))
//!     .unwrap()
//!     .take(1000)
//!     .collect();
//! assert_eq!(instrs.len(), 1000);
//! ```

pub mod cfg;
pub mod decode;
pub mod elf;
pub mod fixture;
pub mod walk;

use std::fmt;
use std::path::Path;
use std::sync::Arc;

/// Why a binary could not be turned into a walker.
#[derive(Debug)]
pub enum BintraceError {
    /// The file could not be read.
    Io(std::io::Error),
    /// The bytes are not a loadable ELF64 x86-64 image.
    Elf(elf::ElfError),
    /// The image loaded but no function start decoded to code.
    Walk(walk::WalkError),
}

impl fmt::Display for BintraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BintraceError::Io(e) => write!(f, "cannot read binary: {e}"),
            BintraceError::Elf(e) => write!(f, "cannot load binary: {e}"),
            BintraceError::Walk(e) => write!(f, "cannot walk binary: {e}"),
        }
    }
}

impl std::error::Error for BintraceError {}

/// Loads `path`, recovers its CFG, and returns a seeded walker over it
/// together with the recovered CFG (for stats and reuse).
pub fn walk_file(
    path: impl AsRef<Path>,
    conf: walk::WalkConfig,
) -> Result<(Arc<cfg::Cfg>, walk::Walker), BintraceError> {
    let image = elf::ElfImage::from_file(path)?;
    let cfg = Arc::new(cfg::Cfg::recover(&image));
    let walker = walk::Walker::new(Arc::clone(&cfg), conf).map_err(BintraceError::Walk)?;
    Ok((cfg, walker))
}
