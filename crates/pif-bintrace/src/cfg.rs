//! Basic-block discovery and CFG recovery over an [`ElfImage`].
//!
//! Recovery is a worklist sweep seeded at every known function start
//! (symbols plus the entry point): from each pending address,
//! instructions are decoded linearly until a control transfer, and
//! every address that control can reach — branch targets, conditional
//! and call fall-throughs — becomes a new block leader. A second pass
//! then materialises one [`Block`] per leader, ending each block at its
//! control transfer or at the next leader (a [`Terminator::FallThrough`]
//! split). Bytes that fail to decode terminate their block as a
//! [`Terminator::DeadEnd`]; the walker treats those as restart points,
//! so data islands and unsupported encodings degrade coverage, never
//! correctness.

use std::collections::{BTreeMap, BTreeSet, HashSet, VecDeque};

use crate::decode::{decode, Ctrl, MAX_INSN_LEN};
use crate::elf::ElfImage;

/// How a basic block ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Terminator {
    /// No control transfer: the block ends because the next address is
    /// another block's leader.
    FallThrough {
        /// Leader of the following block (`== end` of this one).
        next: u64,
    },
    /// Unconditional direct jump.
    Jump {
        /// Jump destination.
        target: u64,
    },
    /// Conditional branch.
    CondJump {
        /// Taken-path destination.
        target: u64,
        /// Not-taken destination (address after the branch).
        fall: u64,
    },
    /// Direct call; control resumes at `ret` after the callee returns.
    Call {
        /// Callee entry.
        target: u64,
        /// Return address (address after the call).
        ret: u64,
    },
    /// Indirect call: callee unknown statically.
    IndirectCall {
        /// Return address (address after the call).
        ret: u64,
    },
    /// Indirect jump: destination unknown statically.
    IndirectJump,
    /// Function return.
    Return,
    /// Trap instruction or undecodable bytes: execution cannot
    /// continue here.
    DeadEnd,
}

/// One recovered basic block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Leader address.
    pub start: u64,
    /// `(pc, len)` of every instruction in the block, terminator
    /// included. Empty only for leaders whose very first bytes failed
    /// to decode (the block is then a bare [`Terminator::DeadEnd`]).
    pub insns: Vec<(u64, u8)>,
    /// How the block ends.
    pub term: Terminator,
}

impl Block {
    /// Address one past the last decoded byte.
    pub fn end(&self) -> u64 {
        match self.insns.last() {
            Some(&(pc, len)) => pc + len as u64,
            None => self.start,
        }
    }
}

/// A recovered control-flow graph.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Blocks keyed by leader address.
    pub blocks: BTreeMap<u64, Block>,
    /// Function starts (symbols + entry) that decoded to at least one
    /// instruction — the walker's restart and indirect-target pool.
    pub func_starts: Vec<u64>,
    /// Image entry point.
    pub entry: u64,
}

/// Per-block instruction cap: a block longer than this without any
/// control transfer is data, not code.
const MAX_BLOCK_INSNS: usize = 1 << 16;

impl Cfg {
    /// Recovers the CFG of every reachable block in `image`.
    pub fn recover(image: &ElfImage) -> Cfg {
        let mut leaders: BTreeSet<u64> = image.func_starts.iter().copied().collect();
        let mut work: VecDeque<u64> = leaders.iter().copied().collect();
        let mut decoded: HashSet<u64> = HashSet::new();

        // Pass 1: discover leaders by sweeping from every reachable
        // control-transfer target.
        while let Some(start) = work.pop_front() {
            let mut pc = start;
            loop {
                if !decoded.insert(pc) {
                    break; // already swept from here
                }
                let Some(bytes) = image.slice_at(pc) else {
                    break;
                };
                let Ok(insn) = decode(&bytes[..bytes.len().min(MAX_INSN_LEN)], pc) else {
                    break;
                };
                let next = pc + insn.len as u64;
                let mut lead = |addr: u64, work: &mut VecDeque<u64>| {
                    if leaders.insert(addr) {
                        work.push_back(addr);
                    }
                };
                match insn.ctrl {
                    Ctrl::None => {
                        pc = next;
                        continue;
                    }
                    Ctrl::Jump { target } => lead(target, &mut work),
                    Ctrl::CondJump { target } => {
                        lead(target, &mut work);
                        lead(next, &mut work);
                    }
                    Ctrl::Call { target } => {
                        lead(target, &mut work);
                        lead(next, &mut work);
                    }
                    Ctrl::IndirectCall => lead(next, &mut work),
                    Ctrl::IndirectJump | Ctrl::Return | Ctrl::Halt => {}
                }
                break;
            }
        }

        // Pass 2: materialise one block per leader.
        let mut blocks = BTreeMap::new();
        let leaders_vec: Vec<u64> = leaders.iter().copied().collect();
        for (i, &start) in leaders_vec.iter().enumerate() {
            let boundary = leaders_vec.get(i + 1).copied();
            let mut insns = Vec::new();
            let mut pc = start;
            let term = loop {
                // `pc > boundary` happens only when the next leader sits
                // inside this block's final instruction (overlapping
                // sweeps of misidentified code); the block still ends
                // here, and execution continues at `pc`.
                if boundary.is_some_and(|b| pc >= b) {
                    break Terminator::FallThrough { next: pc };
                }
                if insns.len() >= MAX_BLOCK_INSNS {
                    break Terminator::DeadEnd;
                }
                let Some(bytes) = image.slice_at(pc) else {
                    break Terminator::DeadEnd;
                };
                let Ok(insn) = decode(&bytes[..bytes.len().min(MAX_INSN_LEN)], pc) else {
                    break Terminator::DeadEnd;
                };
                let next = pc + insn.len as u64;
                insns.push((pc, insn.len));
                match insn.ctrl {
                    Ctrl::None => {
                        pc = next;
                        continue;
                    }
                    Ctrl::Jump { target } => break Terminator::Jump { target },
                    Ctrl::CondJump { target } => break Terminator::CondJump { target, fall: next },
                    Ctrl::Call { target } => break Terminator::Call { target, ret: next },
                    Ctrl::IndirectCall => break Terminator::IndirectCall { ret: next },
                    Ctrl::IndirectJump => break Terminator::IndirectJump,
                    Ctrl::Return => break Terminator::Return,
                    Ctrl::Halt => break Terminator::DeadEnd,
                }
            };
            blocks.insert(start, Block { start, insns, term });
        }

        // Walker restart pool: function starts whose block actually
        // holds code.
        let func_starts: Vec<u64> = image
            .func_starts
            .iter()
            .copied()
            .filter(|a| blocks.get(a).is_some_and(|b| !b.insns.is_empty()))
            .collect();

        Cfg {
            blocks,
            func_starts,
            entry: image.entry,
        }
    }

    /// Number of recovered blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Total decoded instructions across all blocks.
    pub fn insn_count(&self) -> usize {
        self.blocks.values().map(|b| b.insns.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elf::Segment;

    /// Builds a single-segment image at `base` directly from code
    /// bytes, with the given function starts (absolute addresses).
    fn image(base: u64, code: &[u8], funcs: &[u64]) -> ElfImage {
        ElfImage {
            entry: funcs[0],
            segments: vec![Segment {
                vaddr: base,
                data: code.to_vec(),
            }],
            func_starts: funcs.to_vec(),
        }
    }

    #[test]
    fn conditional_branch_splits_blocks() {
        // 0x1000: xor eax,eax         (2)
        // 0x1002: jne 0x1000          (2)  -> leaders: 0x1000, 0x1004
        // 0x1004: ret
        let code = [0x31, 0xc0, 0x75, 0xfc, 0xc3];
        let cfg = Cfg::recover(&image(0x1000, &code, &[0x1000]));
        let b = &cfg.blocks[&0x1000];
        assert_eq!(b.insns, vec![(0x1000, 2), (0x1002, 2)]);
        assert_eq!(
            b.term,
            Terminator::CondJump {
                target: 0x1000,
                fall: 0x1004
            }
        );
        assert_eq!(cfg.blocks[&0x1004].term, Terminator::Return);
    }

    #[test]
    fn call_and_return_recover_both_functions() {
        // f:    0x2000: inc rax; ret
        // main: 0x2004: call f; ret
        let code = [
            0x48, 0xff, 0xc0, 0xc3, // f
            0xe8, 0xf7, 0xff, 0xff, 0xff, // call f (0x2009 - 9 = 0x2000)
            0xc3,
        ];
        let cfg = Cfg::recover(&image(0x2000, &code, &[0x2004, 0x2000]));
        assert_eq!(
            cfg.blocks[&0x2004].term,
            Terminator::Call {
                target: 0x2000,
                ret: 0x2009
            }
        );
        assert_eq!(cfg.blocks[&0x2000].term, Terminator::Return);
        // The post-call address is a leader with its own block.
        assert_eq!(cfg.blocks[&0x2009].term, Terminator::Return);
    }

    #[test]
    fn fallthrough_split_at_jump_target() {
        // 0x3000: jmp 0x3004
        // 0x3002: int3 padding (unreachable)
        // 0x3004: nop           <- leader via jump target
        // 0x3005: ret
        let code = [0xeb, 0x02, 0xcc, 0xcc, 0x90, 0xc3];
        let cfg = Cfg::recover(&image(0x3000, &code, &[0x3000]));
        assert_eq!(
            cfg.blocks[&0x3000].term,
            Terminator::Jump { target: 0x3004 }
        );
        assert_eq!(cfg.blocks[&0x3004].term, Terminator::Return);
        assert_eq!(cfg.blocks[&0x3004].insns.len(), 2);
    }

    #[test]
    fn fallthrough_terminator_when_code_runs_into_a_leader() {
        // Two functions back to back; the first has no terminator
        // before the second's entry (falls through into it).
        // 0x4000: nop; nop        (f1, falls into f2)
        // 0x4002: ret             (f2)
        let code = [0x90, 0x90, 0xc3];
        let cfg = Cfg::recover(&image(0x4000, &code, &[0x4000, 0x4002]));
        assert_eq!(
            cfg.blocks[&0x4000].term,
            Terminator::FallThrough { next: 0x4002 }
        );
        assert_eq!(cfg.blocks[&0x4000].end(), 0x4002);
    }

    #[test]
    fn indirect_jump_is_a_statically_unknown_exit() {
        // 0x5000: jmp [rip+0x1000] -> dead-ends the static walk
        let code = [0xff, 0x25, 0x00, 0x10, 0x00, 0x00];
        let cfg = Cfg::recover(&image(0x5000, &code, &[0x5000]));
        assert_eq!(cfg.blocks[&0x5000].term, Terminator::IndirectJump);
    }

    #[test]
    fn undecodable_bytes_dead_end_the_block() {
        // 0x6000: nop, then an EVEX-prefixed (unsupported) tail.
        let code = [0x90, 0x62, 0xf1, 0x7c, 0x48, 0x58];
        let cfg = Cfg::recover(&image(0x6000, &code, &[0x6000]));
        let b = &cfg.blocks[&0x6000];
        assert_eq!(b.insns, vec![(0x6000, 1)]);
        assert_eq!(b.term, Terminator::DeadEnd);
        // Still a usable restart point: it holds one real instruction.
        assert_eq!(cfg.func_starts, vec![0x6000]);
    }

    #[test]
    fn demo_fixture_recovers_expected_shape() {
        let bytes = crate::fixture::demo_elf();
        let image = ElfImage::parse(&bytes).expect("fixture parses");
        let cfg = Cfg::recover(&image);
        assert_eq!(cfg.func_starts.len(), 3);
        assert!(cfg.block_count() >= 5, "blocks: {:?}", cfg.blocks.keys());
        assert!(cfg.insn_count() >= 10);
        // Every non-empty block keeps instructions contiguous.
        for b in cfg.blocks.values() {
            for w in b.insns.windows(2) {
                assert_eq!(w[0].0 + w[0].1 as u64, w[1].0, "gap inside a block");
            }
        }
    }
}
