//! Baseline instruction prefetchers the paper compares PIF against
//! (§5.5, §5.6 / Fig. 10):
//!
//! * [`NextLinePrefetcher`] — the classic sequential prefetcher
//!   [Smith 1978; Jouppi 1990]: on a trigger event, prefetch the next `N`
//!   sequential blocks. Catches spatially contiguous fetches, blind to
//!   discontinuities.
//! * [`Tifs`] — Temporal Instruction Fetch Streaming [Ferdman et al.,
//!   MICRO 2008]: records the L1-I **miss** stream and replays recorded
//!   miss sequences when a miss recurs. The state of the art PIF improves
//!   on; its history is filtered and fragmented by the cache (§2.1),
//!   which is precisely the coverage gap Fig. 10 shows.
//! * [`DiscontinuityPrefetcher`] — [Spracklen et al., HPCA 2005]: records
//!   fetch discontinuities (non-sequential block transitions) in a table
//!   and prefetches the recorded target when the source block is fetched
//!   again; limited to one transition of lookahead (§6).
//! * [`PerfectICache`] — the perfect-latency instruction cache bound: all
//!   fetches complete at hit latency (Fig. 10 right, "Perfect").
//!
//! All implement [`pif_sim::Prefetcher`] and plug into the engine
//! interchangeably with `pif_core::Pif`.
//!
//! # Example
//!
//! ```
//! use pif_baselines::{NextLinePrefetcher, Tifs};
//! use pif_sim::{Engine, EngineConfig, RunOptions};
//! use pif_workloads::WorkloadProfile;
//!
//! let trace = WorkloadProfile::dss_qry2().scaled(0.03).generate(40_000);
//! let engine = Engine::new(EngineConfig::paper_default());
//! let nl = engine.run(trace.instrs().iter().copied(), NextLinePrefetcher::aggressive(), RunOptions::new());
//! let tifs = engine.run(trace.instrs().iter().copied(), Tifs::unbounded(), RunOptions::new());
//! assert!(nl.prefetch.issued > 0);
//! assert_eq!(tifs.fetch.demand_accesses, nl.fetch.demand_accesses);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod discontinuity;
mod next_line;
mod perfect;
mod tifs;

pub use discontinuity::DiscontinuityPrefetcher;
pub use next_line::{NextLinePrefetcher, NextLineTrigger};
pub use perfect::PerfectICache;
pub use tifs::{Tifs, TifsConfig};
