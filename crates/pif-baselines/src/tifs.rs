//! Temporal Instruction Fetch Streaming (TIFS), reimplemented from
//! Ferdman et al., MICRO 2008 — the state-of-the-art temporal instruction
//! prefetcher the paper compares against.
//!
//! TIFS records the L1-I **miss address stream** in a circular history
//! buffer with an index from miss address to its most recent position.
//! When a miss recurs, TIFS replays the recorded miss sequence from that
//! point, prefetching the blocks it predicts will miss next.
//!
//! Because the recorded stream is the *miss* stream, it inherits the
//! cache's filtering/fragmentation (paper §2.1) and — in a real front end
//! — wrong-path pollution (§2.2). Those are exactly the effects PIF
//! removes by recording retire-order streams; Fig. 10 quantifies the gap.

use std::collections::{HashMap, VecDeque};

use serde::{Deserialize, Serialize};

use pif_sim::cache::AccessOutcome;
use pif_sim::{PrefetchContext, Prefetcher};
use pif_types::{BlockAddr, FetchAccess};

/// TIFS configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TifsConfig {
    /// Miss-history capacity in block addresses; `None` = unbounded (the
    /// paper's "without history storage limitations" comparison, §5.5).
    pub history_capacity: Option<usize>,
    /// Concurrent active streams (MICRO'08 uses a small SVB/stream set).
    pub stream_count: usize,
    /// Lookahead window per stream, in recorded miss addresses.
    pub window: usize,
}

impl Default for TifsConfig {
    fn default() -> Self {
        TifsConfig {
            history_capacity: Some(32 * 1024),
            stream_count: 4,
            window: 12,
        }
    }
}

#[derive(Debug)]
struct TifsStream {
    next_pos: u64,
    lookahead: VecDeque<BlockAddr>,
    last_use: u64,
}

/// The TIFS prefetcher.
///
/// # Example
///
/// ```
/// use pif_baselines::{Tifs, TifsConfig};
/// use pif_sim::Prefetcher;
///
/// let tifs = Tifs::new(TifsConfig::default());
/// assert_eq!(tifs.name(), "TIFS");
/// let unbounded = Tifs::unbounded();
/// assert_eq!(unbounded.config().history_capacity, None);
/// ```
#[derive(Debug)]
pub struct Tifs {
    config: TifsConfig,
    /// Recorded miss stream; `history[i]` is position `base + i`.
    history: VecDeque<BlockAddr>,
    base: u64,
    /// Miss block -> most recent history position.
    index: HashMap<u64, u64>,
    streams: Vec<TifsStream>,
    clock: u64,
    last_recorded: Option<BlockAddr>,
}

impl Tifs {
    /// Creates a TIFS prefetcher.
    ///
    /// # Panics
    ///
    /// Panics if `stream_count` or `window` is zero.
    pub fn new(config: TifsConfig) -> Self {
        assert!(
            config.stream_count > 0 && config.window > 0,
            "TIFS streams and window must be non-zero"
        );
        Tifs {
            config,
            history: VecDeque::new(),
            base: 0,
            index: HashMap::new(),
            streams: Vec::new(),
            clock: 0,
            last_recorded: None,
        }
    }

    /// TIFS with unbounded history (§5.5's idealized comparison).
    pub fn unbounded() -> Self {
        Self::new(TifsConfig {
            history_capacity: None,
            ..TifsConfig::default()
        })
    }

    /// The configuration.
    pub fn config(&self) -> &TifsConfig {
        &self.config
    }

    /// Number of recorded miss addresses currently held.
    pub fn history_len(&self) -> usize {
        self.history.len()
    }

    fn end(&self) -> u64 {
        self.base + self.history.len() as u64
    }

    fn record_miss(&mut self, block: BlockAddr) {
        // Collapse immediate repeats (same block missing twice in a row
        // carries no stream information).
        if self.last_recorded == Some(block) {
            return;
        }
        self.last_recorded = Some(block);
        let pos = self.end();
        self.history.push_back(block);
        self.index.insert(block.number(), pos);
        if let Some(cap) = self.config.history_capacity {
            while self.history.len() > cap {
                self.history.pop_front();
                self.base += 1;
            }
        }
    }

    fn refill(
        history_end: u64,
        get: impl Fn(u64) -> Option<BlockAddr>,
        s: &mut TifsStream,
        window: usize,
    ) {
        while s.lookahead.len() < window && s.next_pos < history_end {
            if let Some(b) = get(s.next_pos) {
                s.lookahead.push_back(b);
            }
            s.next_pos += 1;
        }
    }

    /// Advances a stream containing `block`; returns newly exposed blocks.
    fn advance(&mut self, block: BlockAddr) -> Option<Vec<BlockAddr>> {
        self.clock += 1;
        let end = self.end();
        for si in 0..self.streams.len() {
            if let Some(i) = self.streams[si].lookahead.iter().position(|&b| b == block) {
                let window = self.config.window;
                // Split borrows: copy out what refill needs.
                let mut drained: Vec<BlockAddr> = Vec::new();
                {
                    let base = self.base;
                    let history = &self.history;
                    let get = |pos: u64| {
                        if pos < base {
                            None
                        } else {
                            history.get((pos - base) as usize).copied()
                        }
                    };
                    let s = &mut self.streams[si];
                    s.lookahead.drain(..=i);
                    s.last_use = self.clock;
                    while s.lookahead.len() < window && s.next_pos < end {
                        if let Some(b) = get(s.next_pos) {
                            s.lookahead.push_back(b);
                            drained.push(b);
                        }
                        s.next_pos += 1;
                    }
                }
                return Some(drained);
            }
        }
        None
    }

    /// Opens a stream at the most recent recording of `block`; returns the
    /// initial lookahead (prefetch candidates).
    fn open_stream(&mut self, block: BlockAddr) -> Option<Vec<BlockAddr>> {
        self.clock += 1;
        let &pos = self.index.get(&block.number())?;
        if pos < self.base {
            return None; // overwritten
        }
        let mut s = TifsStream {
            next_pos: pos + 1,
            lookahead: VecDeque::with_capacity(self.config.window),
            last_use: self.clock,
        };
        let end = self.end();
        let base = self.base;
        let history = &self.history;
        Self::refill(
            end,
            |p| {
                if p < base {
                    None
                } else {
                    history.get((p - base) as usize).copied()
                }
            },
            &mut s,
            self.config.window,
        );
        let blocks: Vec<BlockAddr> = s.lookahead.iter().copied().collect();
        if self.streams.len() < self.config.stream_count {
            self.streams.push(s);
        } else if let Some(lru) = self.streams.iter_mut().min_by_key(|s| s.last_use) {
            *lru = s;
        }
        Some(blocks)
    }
}

impl Prefetcher for Tifs {
    fn name(&self) -> &'static str {
        "TIFS"
    }

    fn uses_retire_provenance(&self) -> bool {
        false // retire hook is a no-op
    }

    fn on_access_outcome(
        &mut self,
        _access: &FetchAccess,
        block: BlockAddr,
        outcome: AccessOutcome,
        ctx: &mut PrefetchContext<'_>,
    ) {
        // TIFS observes the miss stream: demand misses and first uses of
        // prefetched blocks (which would have missed without TIFS — the
        // virtual miss stream, keeping the recorded history stable under
        // its own prefetching).
        let is_miss_event = matches!(
            outcome,
            AccessOutcome::Miss | AccessOutcome::HitFirstUseOfPrefetch
        );
        if !is_miss_event {
            return;
        }
        // Replay: advance an active stream or open a new one.
        let new_blocks = match self.advance(block) {
            Some(bs) => bs,
            None => self.open_stream(block).unwrap_or_default(),
        };
        for b in new_blocks {
            ctx.prefetch(b);
        }
        // Record the (virtual) miss into the history.
        self.record_miss(block);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pif_sim::RunOptions;
    use pif_sim::{Engine, EngineConfig, ICacheConfig, NoPrefetcher, PrefetcherHarness};
    use pif_types::{Address, RetiredInstr, TrapLevel};

    fn miss(tifs: &mut Tifs, h: &mut PrefetcherHarness, n: u64) -> Vec<BlockAddr> {
        let access = FetchAccess::correct(Address::new(n * 64), TrapLevel::Tl0);
        h.drive(|ctx| {
            tifs.on_access_outcome(&access, BlockAddr::from_number(n), AccessOutcome::Miss, ctx)
        })
        .to_vec()
    }

    #[test]
    fn records_and_replays_miss_stream() {
        let mut tifs = Tifs::unbounded();
        let mut h = PrefetcherHarness::new(ICacheConfig::paper_default());
        // Record a miss stream 10, 20, 30, 40.
        for n in [10, 20, 30, 40] {
            assert!(
                miss(&mut tifs, &mut h, n).is_empty(),
                "cold: no predictions"
            );
        }
        assert_eq!(tifs.history_len(), 4);
        // The head recurs: TIFS replays 20, 30, 40.
        let reqs = miss(&mut tifs, &mut h, 10);
        assert!(reqs.contains(&BlockAddr::from_number(20)));
        assert!(reqs.contains(&BlockAddr::from_number(30)));
        assert!(reqs.contains(&BlockAddr::from_number(40)));
    }

    #[test]
    fn bounded_history_forgets() {
        let mut tifs = Tifs::new(TifsConfig {
            history_capacity: Some(2),
            ..TifsConfig::default()
        });
        let mut h = PrefetcherHarness::new(ICacheConfig::paper_default());
        for n in [10, 20, 30] {
            miss(&mut tifs, &mut h, n);
        }
        assert_eq!(tifs.history_len(), 2);
        // 10 was evicted: no stream opens.
        let reqs = miss(&mut tifs, &mut h, 10);
        assert!(reqs.is_empty());
    }

    #[test]
    fn consecutive_duplicate_misses_not_recorded() {
        let mut tifs = Tifs::unbounded();
        let mut h = PrefetcherHarness::new(ICacheConfig::paper_default());
        miss(&mut tifs, &mut h, 10);
        miss(&mut tifs, &mut h, 10);
        assert_eq!(tifs.history_len(), 1);
    }

    #[test]
    fn engine_run_covers_repetitive_misses() {
        // Thrashing loop: every block misses every iteration; the miss
        // stream equals the access stream, so TIFS covers iterations 2+.
        let mut trace = Vec::new();
        for _ in 0..4 {
            for blk in 0..2048u64 {
                for i in 0..8 {
                    trace.push(RetiredInstr::simple(
                        Address::new(blk * 64 + i * 8),
                        TrapLevel::Tl0,
                    ));
                }
            }
        }
        let engine = Engine::new(EngineConfig::paper_default());
        let base = engine.run(trace.iter().copied(), NoPrefetcher, RunOptions::new());
        let tifs = engine.run(trace.iter().copied(), Tifs::unbounded(), RunOptions::new());
        assert!(
            tifs.miss_coverage() > 0.6,
            "TIFS coverage {}",
            tifs.miss_coverage()
        );
        assert!(tifs.speedup_over(&base) > 1.05);
    }

    #[test]
    fn stream_pool_is_bounded() {
        let mut tifs = Tifs::new(TifsConfig {
            stream_count: 2,
            ..TifsConfig::default()
        });
        let mut h = PrefetcherHarness::new(ICacheConfig::paper_default());
        // Record three disjoint streams.
        for start in [100, 200, 300] {
            for k in 0..4 {
                miss(&mut tifs, &mut h, start + k * 7);
            }
        }
        // Open three streams: pool holds only two.
        miss(&mut tifs, &mut h, 100);
        miss(&mut tifs, &mut h, 200);
        miss(&mut tifs, &mut h, 300);
        assert!(tifs.streams.len() <= 2);
    }
}
