//! Perfect-latency instruction cache (the Fig. 10 "Perfect" bound).

use pif_sim::Prefetcher;

/// A perfect-latency L1-I: every fetch completes at hit latency (§5.6
/// footnote: "the perfect-latency cache we simulate always returns the
/// requested instruction block with the latency of a cache hit"). The
/// engine recognizes the marker and charges no fetch stalls.
///
/// # Example
///
/// ```
/// use pif_baselines::PerfectICache;
/// use pif_sim::Prefetcher;
///
/// assert!(PerfectICache.is_perfect());
/// assert_eq!(PerfectICache.name(), "Perfect");
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct PerfectICache;

impl Prefetcher for PerfectICache {
    fn name(&self) -> &'static str {
        "Perfect"
    }

    fn is_perfect(&self) -> bool {
        true
    }

    fn uses_retire_provenance(&self) -> bool {
        false // retire hook is a no-op
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pif_sim::{Engine, EngineConfig, NoPrefetcher, RunOptions};
    use pif_types::{Address, RetiredInstr, TrapLevel};

    #[test]
    fn perfect_cache_outperforms_everything() {
        let mut trace = Vec::new();
        for _ in 0..3 {
            for blk in 0..3000u64 {
                for i in 0..4 {
                    trace.push(RetiredInstr::simple(
                        Address::new(blk * 64 + i * 16),
                        TrapLevel::Tl0,
                    ));
                }
            }
        }
        let engine = Engine::new(EngineConfig::paper_default());
        let base = engine.run(trace.iter().copied(), NoPrefetcher, RunOptions::new());
        let perfect = engine.run(trace.iter().copied(), PerfectICache, RunOptions::new());
        assert_eq!(perfect.fetch.demand_misses, 0);
        assert_eq!(perfect.timing.fetch_stall_cycles, 0);
        assert!(perfect.speedup_over(&base) > 1.0);
    }
}
