//! Next-line (sequential) instruction prefetcher.

use pif_sim::cache::AccessOutcome;
use pif_sim::{PrefetchContext, Prefetcher};
use pif_types::{BlockAddr, FetchAccess};

/// When the next-line prefetcher fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NextLineTrigger {
    /// Prefetch on every demand miss.
    OnMiss,
    /// Prefetch on every access (most aggressive, most redundant probes).
    OnAccess,
    /// Tagged: fire on misses *and* on the first use of a prefetched
    /// block, keeping the sequential run alive (Smith's tagged scheme).
    Tagged,
}

/// Sequential next-N-line prefetcher.
///
/// # Example
///
/// ```
/// use pif_baselines::{NextLinePrefetcher, NextLineTrigger};
///
/// let nl = NextLinePrefetcher::new(4, NextLineTrigger::Tagged);
/// assert_eq!(nl.degree(), 4);
/// let aggressive = NextLinePrefetcher::aggressive();
/// assert_eq!(aggressive.degree(), 8);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct NextLinePrefetcher {
    degree: usize,
    trigger: NextLineTrigger,
}

impl NextLinePrefetcher {
    /// Creates a next-line prefetcher issuing `degree` sequential blocks
    /// per trigger.
    ///
    /// # Panics
    ///
    /// Panics if `degree` is zero.
    pub fn new(degree: usize, trigger: NextLineTrigger) -> Self {
        assert!(degree > 0, "degree must be non-zero");
        NextLinePrefetcher { degree, trigger }
    }

    /// The paper's "aggressive next-line prefetcher" configuration:
    /// tagged, deep lookahead.
    pub fn aggressive() -> Self {
        Self::new(8, NextLineTrigger::Tagged)
    }

    /// Prefetch degree (blocks per trigger).
    pub fn degree(&self) -> usize {
        self.degree
    }

    fn fire(&self, block: BlockAddr, ctx: &mut PrefetchContext<'_>) {
        for i in 1..=self.degree as i64 {
            ctx.prefetch(block.offset(i));
        }
    }
}

impl Prefetcher for NextLinePrefetcher {
    fn name(&self) -> &'static str {
        "Next-Line"
    }

    fn uses_retire_provenance(&self) -> bool {
        false // retire hook is a no-op
    }

    fn on_access_outcome(
        &mut self,
        _access: &FetchAccess,
        block: BlockAddr,
        outcome: AccessOutcome,
        ctx: &mut PrefetchContext<'_>,
    ) {
        let fire = match self.trigger {
            NextLineTrigger::OnMiss => outcome == AccessOutcome::Miss,
            NextLineTrigger::OnAccess => true,
            NextLineTrigger::Tagged => matches!(
                outcome,
                AccessOutcome::Miss | AccessOutcome::HitFirstUseOfPrefetch
            ),
        };
        if fire {
            self.fire(block, ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pif_sim::RunOptions;
    use pif_sim::{Engine, EngineConfig, ICacheConfig, NoPrefetcher, PrefetcherHarness};
    use pif_types::{Address, RetiredInstr, TrapLevel};

    #[test]
    fn miss_triggers_sequential_prefetches() {
        let mut nl = NextLinePrefetcher::new(3, NextLineTrigger::OnMiss);
        let mut h = PrefetcherHarness::new(ICacheConfig::paper_default());
        let access = FetchAccess::correct(Address::new(0), TrapLevel::Tl0);
        let reqs = h.drive(|ctx| {
            nl.on_access_outcome(&access, BlockAddr::from_number(0), AccessOutcome::Miss, ctx)
        });
        assert_eq!(
            reqs,
            vec![
                BlockAddr::from_number(1),
                BlockAddr::from_number(2),
                BlockAddr::from_number(3)
            ]
        );
    }

    #[test]
    fn hit_does_not_trigger_on_miss_mode() {
        let mut nl = NextLinePrefetcher::new(3, NextLineTrigger::OnMiss);
        let mut h = PrefetcherHarness::new(ICacheConfig::paper_default());
        let access = FetchAccess::correct(Address::new(0), TrapLevel::Tl0);
        let reqs = h.drive(|ctx| {
            nl.on_access_outcome(&access, BlockAddr::from_number(0), AccessOutcome::Hit, ctx)
        });
        assert!(reqs.is_empty());
    }

    #[test]
    fn tagged_mode_chains_on_prefetch_first_use() {
        let mut nl = NextLinePrefetcher::new(2, NextLineTrigger::Tagged);
        let mut h = PrefetcherHarness::new(ICacheConfig::paper_default());
        let access = FetchAccess::correct(Address::new(64), TrapLevel::Tl0);
        let reqs = h.drive(|ctx| {
            nl.on_access_outcome(
                &access,
                BlockAddr::from_number(1),
                AccessOutcome::HitFirstUseOfPrefetch,
                ctx,
            )
        });
        assert_eq!(reqs.len(), 2, "tagged scheme keeps the run alive");
    }

    #[test]
    fn covers_sequential_thrashing_workload() {
        // Sequential sweep larger than the cache: next-line should cover
        // nearly everything after the first block of each run.
        let mut trace = Vec::new();
        for _ in 0..3 {
            for blk in 0..2048u64 {
                for i in 0..8 {
                    trace.push(RetiredInstr::simple(
                        Address::new(blk * 64 + i * 8),
                        TrapLevel::Tl0,
                    ));
                }
            }
        }
        let engine = Engine::new(EngineConfig::paper_default());
        let base = engine.run(trace.iter().copied(), NoPrefetcher, RunOptions::new());
        let nl = engine.run(
            trace.iter().copied(),
            NextLinePrefetcher::aggressive(),
            RunOptions::new(),
        );
        assert!(
            nl.miss_coverage() > 0.8,
            "sequential coverage {}",
            nl.miss_coverage()
        );
        assert!(nl.speedup_over(&base) > 1.1);
    }

    #[test]
    #[should_panic]
    fn zero_degree_rejected() {
        let _ = NextLinePrefetcher::new(0, NextLineTrigger::OnMiss);
    }
}
