//! Discontinuity prefetcher (Spracklen et al., HPCA 2005).
//!
//! Records *fetch discontinuities* — transitions between non-sequential
//! instruction blocks — in a table keyed by the source block. When the
//! source block is fetched again, the recorded target (plus a short
//! sequential run) is prefetched. As the paper notes (§6), it handles
//! only one transition at a time, limiting lookahead; PIF's full stream
//! history removes that limit.

use pif_sim::cache::{AccessOutcome, Lru, SetAssocCache};
use pif_sim::{PrefetchContext, Prefetcher};
use pif_types::{BlockAddr, FetchAccess};

/// The discontinuity prefetcher, with a next-line component as in the
/// original proposal.
///
/// # Example
///
/// ```
/// use pif_baselines::DiscontinuityPrefetcher;
/// use pif_sim::Prefetcher;
///
/// let d = DiscontinuityPrefetcher::new(2048, 4, 2);
/// assert_eq!(d.name(), "Discontinuity");
/// ```
#[derive(Debug)]
pub struct DiscontinuityPrefetcher {
    /// Discontinuity table: source block -> discontinuous target block.
    table: SetAssocCache<Lru, BlockAddr>,
    /// Sequential blocks prefetched after each predicted target.
    depth: usize,
    last_block: Option<BlockAddr>,
}

impl DiscontinuityPrefetcher {
    /// Creates a discontinuity prefetcher with a `entries`-entry,
    /// `ways`-associative transition table, prefetching `depth` sequential
    /// blocks past each predicted target.
    ///
    /// # Panics
    ///
    /// Panics if the table geometry is invalid (sets not a power of two,
    /// or more than 16 ways — the packed-LRU limit) or `depth` is zero.
    pub fn new(entries: usize, ways: usize, depth: usize) -> Self {
        assert!(depth > 0, "depth must be non-zero");
        DiscontinuityPrefetcher {
            table: SetAssocCache::new(entries / ways, ways).expect("valid table geometry"),
            depth,
            last_block: None,
        }
    }

    /// The configuration used in our Fig. 10 comparisons.
    pub fn paper_scale() -> Self {
        Self::new(8 * 1024, 4, 2)
    }
}

impl Prefetcher for DiscontinuityPrefetcher {
    fn name(&self) -> &'static str {
        "Discontinuity"
    }

    fn uses_retire_provenance(&self) -> bool {
        false // retire hook is a no-op
    }

    fn on_access_outcome(
        &mut self,
        access: &FetchAccess,
        block: BlockAddr,
        _outcome: AccessOutcome,
        ctx: &mut PrefetchContext<'_>,
    ) {
        // Learn: a non-sequential transition records source -> target.
        if access.is_correct_path() {
            if let Some(prev) = self.last_block {
                if block != prev && block != prev.next() {
                    self.table.insert(prev, block);
                }
            }
            self.last_block = Some(block);
        }

        // Predict: next-line run plus any recorded discontinuity target.
        for i in 1..=self.depth as i64 {
            ctx.prefetch(block.offset(i));
        }
        if let Some(&target) = self.table.probe(block) {
            ctx.prefetch(target);
            for i in 1..=self.depth as i64 {
                ctx.prefetch(target.offset(i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pif_sim::{ICacheConfig, PrefetcherHarness};
    use pif_types::{Address, TrapLevel};

    fn access_at(n: u64) -> FetchAccess {
        FetchAccess::correct(Address::new(n * 64), TrapLevel::Tl0)
    }

    fn drive(d: &mut DiscontinuityPrefetcher, h: &mut PrefetcherHarness, n: u64) -> Vec<BlockAddr> {
        h.drive(|ctx| {
            d.on_access_outcome(
                &access_at(n),
                BlockAddr::from_number(n),
                AccessOutcome::Miss,
                ctx,
            )
        })
        .to_vec()
    }

    #[test]
    fn learns_discontinuity_and_prefetches_target() {
        let mut d = DiscontinuityPrefetcher::new(64, 2, 1);
        let mut h = PrefetcherHarness::new(ICacheConfig::paper_default());
        // Sequence 10 -> 50 teaches the transition.
        drive(&mut d, &mut h, 10);
        drive(&mut d, &mut h, 50);
        // Revisit 10: target 50 must be among the requests.
        let reqs = drive(&mut d, &mut h, 10);
        assert!(reqs.contains(&BlockAddr::from_number(50)), "{reqs:?}");
    }

    #[test]
    fn sequential_transitions_are_not_recorded() {
        let mut d = DiscontinuityPrefetcher::new(64, 2, 1);
        let mut h = PrefetcherHarness::new(ICacheConfig::paper_default());
        drive(&mut d, &mut h, 10);
        drive(&mut d, &mut h, 11); // sequential: no discontinuity
        let reqs = drive(&mut d, &mut h, 10);
        // Only the next-line request (11 already requested once; the
        // in-flight view was drained per drive, so it can repeat).
        assert!(reqs.iter().all(|b| *b == BlockAddr::from_number(11)));
    }

    #[test]
    fn one_transition_lookahead_only() {
        // Chain 10 -> 50 -> 90: fetching 10 predicts 50 but NOT 90 — the
        // lookahead limitation PIF removes.
        let mut d = DiscontinuityPrefetcher::new(64, 2, 1);
        let mut h = PrefetcherHarness::new(ICacheConfig::paper_default());
        drive(&mut d, &mut h, 10);
        drive(&mut d, &mut h, 50);
        drive(&mut d, &mut h, 90);
        let reqs = drive(&mut d, &mut h, 10);
        assert!(reqs.contains(&BlockAddr::from_number(50)));
        assert!(!reqs.contains(&BlockAddr::from_number(90)));
    }

    #[test]
    fn wrong_path_accesses_do_not_teach() {
        let mut d = DiscontinuityPrefetcher::new(64, 2, 1);
        let mut h = PrefetcherHarness::new(ICacheConfig::paper_default());
        drive(&mut d, &mut h, 10);
        // A wrong-path fetch to 70 must not record 10 -> 70.
        let wrong = FetchAccess::wrong(Address::new(70 * 64), TrapLevel::Tl0);
        h.drive(|ctx| {
            d.on_access_outcome(&wrong, BlockAddr::from_number(70), AccessOutcome::Miss, ctx)
        });
        drive(&mut d, &mut h, 50); // correct-path: records 10 -> 50
        let reqs = drive(&mut d, &mut h, 10);
        assert!(!reqs.contains(&BlockAddr::from_number(70)));
        assert!(reqs.contains(&BlockAddr::from_number(50)));
    }
}
