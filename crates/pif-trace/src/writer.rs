//! Streaming v2 trace writer.

use std::io::{self, Write};

use pif_types::RetiredInstr;

use crate::format::{
    encode_record, DEFAULT_CHUNK_RECORDS, MAGIC, MAX_CHUNK_BYTES, MAX_CHUNK_RECORDS, MAX_NAME_LEN,
    VERSION_V2,
};

/// Streams retired instructions into a v2 trace file, holding at most one
/// encoded chunk in memory.
///
/// Records are buffered into a chunk; when the chunk reaches its record
/// capacity it is written out behind an 8-byte header (record count +
/// payload length), and the delta base resets so every chunk decodes
/// independently — that is what makes chunks skippable. [`finish`] seals
/// the file with a terminator chunk carrying the total record count, so
/// readers can tell clean end-of-file from truncation.
///
/// [`finish`]: TraceWriter::finish
///
/// # Example
///
/// ```
/// use pif_trace::{TraceReader, TraceWriter};
/// use pif_types::{Address, RetiredInstr, TrapLevel};
///
/// let mut writer = TraceWriter::new(Vec::new(), "example").unwrap();
/// for i in 0..100u64 {
///     writer.push(&RetiredInstr::simple(Address::new(i * 4), TrapLevel::Tl0)).unwrap();
/// }
/// let bytes = writer.finish().unwrap();
/// let reader = TraceReader::open(bytes.as_slice()).unwrap();
/// assert_eq!(reader.name(), "example");
/// assert_eq!(reader.instrs().count(), 100);
/// ```
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    sink: W,
    /// Encoded payload of the chunk under construction.
    buf: Vec<u8>,
    chunk_records: u32,
    chunk_capacity: u32,
    prev_pc: u64,
    total_records: u64,
    bytes_written: u64,
    finished: bool,
}

impl<W: Write> TraceWriter<W> {
    /// Starts a v2 trace stream on `sink`, writing the file header.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink. Rejects names longer than
    /// [`MAX_NAME_LEN`](crate::MAX_NAME_LEN) bytes with
    /// [`io::ErrorKind::InvalidInput`].
    pub fn new(sink: W, name: &str) -> io::Result<Self> {
        Self::with_chunk_records(sink, name, DEFAULT_CHUNK_RECORDS)
    }

    /// As [`TraceWriter::new`] with an explicit chunk capacity (records
    /// per chunk, clamped to `1..=MAX_CHUNK_RECORDS`). Smaller chunks
    /// seek faster and buffer less; larger chunks shave header overhead.
    pub fn with_chunk_records(mut sink: W, name: &str, chunk_records: u32) -> io::Result<Self> {
        if name.len() as u64 > MAX_NAME_LEN as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "trace name too long",
            ));
        }
        sink.write_all(MAGIC)?;
        sink.write_all(&VERSION_V2.to_le_bytes())?;
        sink.write_all(&(name.len() as u32).to_le_bytes())?;
        sink.write_all(name.as_bytes())?;
        Ok(TraceWriter {
            sink,
            buf: Vec::with_capacity(4096),
            chunk_records: 0,
            chunk_capacity: chunk_records.clamp(1, MAX_CHUNK_RECORDS),
            prev_pc: 0,
            total_records: 0,
            bytes_written: (4 + 4 + 4 + name.len()) as u64,
            finished: false,
        })
    }

    /// Appends one retired instruction to the stream.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from flushing a full chunk.
    pub fn push(&mut self, instr: &RetiredInstr) -> io::Result<()> {
        debug_assert!(!self.finished, "push after finish");
        encode_record(&mut self.buf, instr, &mut self.prev_pc);
        self.chunk_records += 1;
        self.total_records += 1;
        // Flush on record count, and also on payload bytes: a record can
        // encode to at most 31 bytes (flags + three 10-byte varints), so
        // flushing within a record's width of MAX_CHUNK_BYTES guarantees
        // every emitted chunk stays within what the reader accepts even
        // at the maximum record capacity.
        if self.chunk_records >= self.chunk_capacity
            || self.buf.len() + 32 > MAX_CHUNK_BYTES as usize
        {
            self.flush_chunk()?;
        }
        Ok(())
    }

    /// Appends every instruction from an iterator.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from flushing full chunks.
    pub fn extend<I: IntoIterator<Item = RetiredInstr>>(&mut self, instrs: I) -> io::Result<()> {
        for instr in instrs {
            self.push(&instr)?;
        }
        Ok(())
    }

    /// Records pushed so far.
    pub fn records_written(&self) -> u64 {
        self.total_records
    }

    /// Bytes emitted to the sink so far, plus the buffered partial chunk.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
            + if self.chunk_records > 0 {
                8 + self.buf.len() as u64
            } else {
                0
            }
    }

    fn flush_chunk(&mut self) -> io::Result<()> {
        if self.chunk_records == 0 {
            return Ok(());
        }
        self.sink.write_all(&self.chunk_records.to_le_bytes())?;
        self.sink
            .write_all(&(self.buf.len() as u32).to_le_bytes())?;
        self.sink.write_all(&self.buf)?;
        self.bytes_written += 8 + self.buf.len() as u64;
        self.buf.clear();
        self.chunk_records = 0;
        // Each chunk restarts the delta base so it decodes independently.
        self.prev_pc = 0;
        Ok(())
    }

    /// Flushes the final partial chunk, writes the terminator (record
    /// count 0, payload = total record count), and returns the sink.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors. Dropping a writer without calling `finish`
    /// leaves a truncated (reader-detectable) file.
    pub fn finish(mut self) -> io::Result<W> {
        self.flush_chunk()?;
        self.sink.write_all(&0u32.to_le_bytes())?;
        self.sink.write_all(&8u32.to_le_bytes())?;
        self.sink.write_all(&self.total_records.to_le_bytes())?;
        self.bytes_written += 16;
        self.finished = true;
        self.sink.flush()?;
        Ok(self.sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pif_types::{Address, TrapLevel};

    fn instr(pc: u64) -> RetiredInstr {
        RetiredInstr::simple(Address::new(pc), TrapLevel::Tl0)
    }

    #[test]
    fn rejects_oversized_name() {
        let name = "x".repeat(MAX_NAME_LEN as usize + 1);
        assert!(TraceWriter::new(Vec::new(), &name).is_err());
    }

    #[test]
    fn empty_trace_is_header_plus_terminator() {
        let bytes = TraceWriter::new(Vec::new(), "e").unwrap().finish().unwrap();
        // magic+version+len+name + terminator header + u64 total.
        assert_eq!(bytes.len(), 4 + 4 + 4 + 1 + 8 + 8);
    }

    #[test]
    fn bytes_written_tracks_sink_and_buffer() {
        let mut w = TraceWriter::with_chunk_records(Vec::new(), "t", 4).unwrap();
        let header = w.bytes_written();
        w.push(&instr(0x1000)).unwrap();
        assert!(w.bytes_written() > header, "buffered chunk counted");
        for i in 1..8 {
            w.push(&instr(0x1000 + i * 4)).unwrap();
        }
        assert_eq!(w.records_written(), 8);
        let total = w.bytes_written();
        let bytes = w.finish().unwrap();
        assert_eq!(bytes.len() as u64, total + 16, "terminator appended");
    }

    #[test]
    fn worst_case_records_never_emit_oversized_chunks() {
        use pif_types::{BranchInfo, BranchKind};
        // Maximum record capacity + records that encode to the maximum
        // ~31 bytes each (full-width PC/target/fall-through deltas): the
        // byte-based flush must cap every chunk at MAX_CHUNK_BYTES so the
        // reader accepts what the writer produced.
        let mut w =
            TraceWriter::with_chunk_records(Vec::new(), "worst", MAX_CHUNK_RECORDS).unwrap();
        let n = 2_300_000u64; // > MAX_CHUNK_BYTES / 31, forces a byte flush
        for i in 0..n {
            let pc = if i % 2 == 0 { u64::MAX / 2 } else { 1 };
            w.push(&RetiredInstr::branch(
                Address::new(pc),
                TrapLevel::Tl0,
                BranchInfo {
                    kind: BranchKind::IndirectCall,
                    taken: true,
                    taken_target: Address::new(pc.wrapping_add(u64::MAX / 3)),
                    fall_through: Address::new(pc.wrapping_sub(u64::MAX / 5)),
                },
            ))
            .unwrap();
        }
        let bytes = w.finish().unwrap();
        let info = crate::scan_info(bytes.as_slice()).unwrap();
        assert_eq!(info.records, n, "every record decodes back");
        assert!(info.chunks >= 2, "byte cap must have split the stream");
    }

    #[test]
    fn sequential_trace_compresses_to_about_two_bytes_per_instr() {
        let mut w = TraceWriter::new(Vec::new(), "seq").unwrap();
        let n = 10_000u64;
        for i in 0..n {
            w.push(&instr(0x40_0000 + i * 4)).unwrap();
        }
        let bytes = w.finish().unwrap();
        let per_instr = bytes.len() as f64 / n as f64;
        assert!(per_instr < 2.2, "{per_instr} bytes/instr");
    }
}
