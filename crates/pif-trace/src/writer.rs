//! Streaming v2 trace writer, plus the crash-safe [`AtomicTraceWriter`]
//! used by `tracectl record`.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

use pif_types::RetiredInstr;

use crate::format::{
    encode_record, DEFAULT_CHUNK_RECORDS, MAGIC, MAX_CHUNK_BYTES, MAX_CHUNK_RECORDS, MAX_NAME_LEN,
    VERSION_V2,
};

/// Streams retired instructions into a v2 trace file, holding at most one
/// encoded chunk in memory.
///
/// Records are buffered into a chunk; when the chunk reaches its record
/// capacity it is written out behind an 8-byte header (record count +
/// payload length), and the delta base resets so every chunk decodes
/// independently — that is what makes chunks skippable. [`finish`] seals
/// the file with a terminator chunk carrying the total record count, so
/// readers can tell clean end-of-file from truncation.
///
/// [`finish`]: TraceWriter::finish
///
/// # Example
///
/// ```
/// use pif_trace::{TraceReader, TraceWriter};
/// use pif_types::{Address, RetiredInstr, TrapLevel};
///
/// let mut writer = TraceWriter::new(Vec::new(), "example").unwrap();
/// for i in 0..100u64 {
///     writer.push(&RetiredInstr::simple(Address::new(i * 4), TrapLevel::Tl0)).unwrap();
/// }
/// let bytes = writer.finish().unwrap();
/// let reader = TraceReader::open(bytes.as_slice()).unwrap();
/// assert_eq!(reader.name(), "example");
/// assert_eq!(reader.instrs().count(), 100);
/// ```
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    sink: W,
    /// Encoded payload of the chunk under construction.
    buf: Vec<u8>,
    chunk_records: u32,
    chunk_capacity: u32,
    prev_pc: u64,
    total_records: u64,
    bytes_written: u64,
    finished: bool,
}

impl<W: Write> TraceWriter<W> {
    /// Starts a v2 trace stream on `sink`, writing the file header.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink. Rejects names longer than
    /// [`MAX_NAME_LEN`](crate::MAX_NAME_LEN) bytes with
    /// [`io::ErrorKind::InvalidInput`].
    pub fn new(sink: W, name: &str) -> io::Result<Self> {
        Self::with_chunk_records(sink, name, DEFAULT_CHUNK_RECORDS)
    }

    /// As [`TraceWriter::new`] with an explicit chunk capacity (records
    /// per chunk, clamped to `1..=MAX_CHUNK_RECORDS`). Smaller chunks
    /// seek faster and buffer less; larger chunks shave header overhead.
    pub fn with_chunk_records(mut sink: W, name: &str, chunk_records: u32) -> io::Result<Self> {
        if name.len() as u64 > MAX_NAME_LEN as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "trace name too long",
            ));
        }
        sink.write_all(MAGIC)?;
        sink.write_all(&VERSION_V2.to_le_bytes())?;
        sink.write_all(&(name.len() as u32).to_le_bytes())?;
        sink.write_all(name.as_bytes())?;
        Ok(TraceWriter {
            sink,
            buf: Vec::with_capacity(4096),
            chunk_records: 0,
            chunk_capacity: chunk_records.clamp(1, MAX_CHUNK_RECORDS),
            prev_pc: 0,
            total_records: 0,
            bytes_written: (4 + 4 + 4 + name.len()) as u64,
            finished: false,
        })
    }

    /// Appends one retired instruction to the stream.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from flushing a full chunk.
    pub fn push(&mut self, instr: &RetiredInstr) -> io::Result<()> {
        debug_assert!(!self.finished, "push after finish");
        encode_record(&mut self.buf, instr, &mut self.prev_pc);
        self.chunk_records += 1;
        self.total_records += 1;
        // Flush on record count, and also on payload bytes: a record can
        // encode to at most 31 bytes (flags + three 10-byte varints), so
        // flushing within a record's width of MAX_CHUNK_BYTES guarantees
        // every emitted chunk stays within what the reader accepts even
        // at the maximum record capacity.
        if self.chunk_records >= self.chunk_capacity
            || self.buf.len() + 32 > MAX_CHUNK_BYTES as usize
        {
            self.flush_chunk()?;
        }
        Ok(())
    }

    /// Appends every instruction from an iterator.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from flushing full chunks.
    pub fn extend<I: IntoIterator<Item = RetiredInstr>>(&mut self, instrs: I) -> io::Result<()> {
        for instr in instrs {
            self.push(&instr)?;
        }
        Ok(())
    }

    /// Records pushed so far.
    pub fn records_written(&self) -> u64 {
        self.total_records
    }

    /// Bytes emitted to the sink so far, plus the buffered partial chunk.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
            + if self.chunk_records > 0 {
                8 + self.buf.len() as u64
            } else {
                0
            }
    }

    fn flush_chunk(&mut self) -> io::Result<()> {
        if self.chunk_records == 0 {
            return Ok(());
        }
        pif_fail::fail_point!("trace.write.chunk", |e: pif_fail::FailError| Err(
            io::Error::other(e.to_string())
        ));
        self.sink.write_all(&self.chunk_records.to_le_bytes())?;
        self.sink
            .write_all(&(self.buf.len() as u32).to_le_bytes())?;
        self.sink.write_all(&self.buf)?;
        self.bytes_written += 8 + self.buf.len() as u64;
        self.buf.clear();
        self.chunk_records = 0;
        // Each chunk restarts the delta base so it decodes independently.
        self.prev_pc = 0;
        Ok(())
    }

    /// Flushes the final partial chunk, writes the terminator (record
    /// count 0, payload = total record count), and returns the sink.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors. Dropping a writer without calling `finish`
    /// leaves a truncated (reader-detectable) file.
    pub fn finish(mut self) -> io::Result<W> {
        self.flush_chunk()?;
        pif_fail::fail_point!("trace.write.finish", |e: pif_fail::FailError| Err(
            io::Error::other(e.to_string())
        ));
        self.sink.write_all(&0u32.to_le_bytes())?;
        self.sink.write_all(&8u32.to_le_bytes())?;
        self.sink.write_all(&self.total_records.to_le_bytes())?;
        self.bytes_written += 16;
        self.finished = true;
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Crash-safe [`TraceWriter`] over a destination *path*: records stream
/// into a hidden sibling temp file, and only a successful
/// [`finish`](AtomicTraceWriter::finish) — which flushes, fsyncs, and
/// atomically renames — makes the destination appear.
///
/// The contract this buys: the destination path is either absent or a
/// complete, terminated trace. A crash (or plain drop) mid-record never
/// leaves a truncated file under the real name; the abandoned temp file
/// is removed on drop, and a temp file orphaned by a hard kill never
/// shadows the destination because its name carries the writing PID.
///
/// `tracectl record`/`convert` write through this type, which is what
/// makes killing a long record safe to retry.
#[derive(Debug)]
pub struct AtomicTraceWriter {
    /// `None` only after `finish` has consumed the inner writer.
    writer: Option<TraceWriter<BufWriter<File>>>,
    tmp: PathBuf,
    dest: PathBuf,
}

impl AtomicTraceWriter {
    /// Starts a v2 trace destined for `dest`, staging into a sibling
    /// temp file (`<file>.tmp.<pid>` in the same directory, so the final
    /// rename cannot cross filesystems).
    ///
    /// # Errors
    ///
    /// Everything [`TraceWriter::with_chunk_records`] reports, plus
    /// failure to create the temp file.
    pub fn create(
        dest: impl Into<PathBuf>,
        name: &str,
        chunk_records: u32,
    ) -> io::Result<AtomicTraceWriter> {
        let dest = dest.into();
        let mut tmp_name = dest.file_name().unwrap_or_default().to_os_string();
        tmp_name.push(format!(".tmp.{}", std::process::id()));
        let tmp = dest.with_file_name(tmp_name);
        let file = File::create(&tmp)?;
        match TraceWriter::with_chunk_records(BufWriter::new(file), name, chunk_records) {
            Ok(writer) => Ok(AtomicTraceWriter {
                writer: Some(writer),
                tmp,
                dest,
            }),
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    /// As [`AtomicTraceWriter::create`] with the default chunk capacity.
    pub fn create_default(dest: impl Into<PathBuf>, name: &str) -> io::Result<AtomicTraceWriter> {
        Self::create(dest, name, DEFAULT_CHUNK_RECORDS)
    }

    /// Appends one retired instruction (see [`TraceWriter::push`]).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from flushing a full chunk.
    pub fn push(&mut self, instr: &RetiredInstr) -> io::Result<()> {
        self.inner_mut().push(instr)
    }

    /// Appends every instruction from an iterator.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from flushing full chunks.
    pub fn extend<I: IntoIterator<Item = RetiredInstr>>(&mut self, instrs: I) -> io::Result<()> {
        self.inner_mut().extend(instrs)
    }

    /// Records pushed so far.
    pub fn records_written(&self) -> u64 {
        self.inner().records_written()
    }

    /// Bytes staged so far, buffered partial chunk included.
    pub fn bytes_written(&self) -> u64 {
        self.inner().bytes_written()
    }

    /// The destination path the trace will appear at after `finish`.
    pub fn dest(&self) -> &Path {
        &self.dest
    }

    /// Seals the trace (terminator, flush, fsync) and atomically renames
    /// it into place, returning the total encoded size in bytes.
    ///
    /// # Errors
    ///
    /// Any I/O failure; on error the temp file is removed and the
    /// destination is left untouched (absent, or whatever it held
    /// before).
    pub fn finish(mut self) -> io::Result<u64> {
        let writer = self.writer.take().expect("writer present until finish");
        let result = (|| {
            let buf = writer.finish()?;
            let file = buf
                .into_inner()
                .map_err(|e| io::Error::other(e.to_string()))?;
            // The fsync-before-rename is the crash-safety half of the
            // contract: rename alone can publish a name whose bytes never
            // reached the disk.
            file.sync_all()?;
            drop(file);
            std::fs::rename(&self.tmp, &self.dest)
        })();
        match result {
            Ok(()) => {
                let bytes = std::fs::metadata(&self.dest).map(|m| m.len()).unwrap_or(0);
                Ok(bytes)
            }
            Err(e) => {
                let _ = std::fs::remove_file(&self.tmp);
                Err(e)
            }
        }
    }

    fn inner(&self) -> &TraceWriter<BufWriter<File>> {
        self.writer.as_ref().expect("writer present until finish")
    }

    fn inner_mut(&mut self) -> &mut TraceWriter<BufWriter<File>> {
        self.writer.as_mut().expect("writer present until finish")
    }
}

impl Drop for AtomicTraceWriter {
    fn drop(&mut self) {
        if let Some(writer) = self.writer.take() {
            // Abandoned mid-record: close the handle, then discard the
            // staged bytes so nothing masquerades as a finished trace.
            drop(writer);
            let _ = std::fs::remove_file(&self.tmp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pif_types::{Address, TrapLevel};

    fn instr(pc: u64) -> RetiredInstr {
        RetiredInstr::simple(Address::new(pc), TrapLevel::Tl0)
    }

    #[test]
    fn rejects_oversized_name() {
        let name = "x".repeat(MAX_NAME_LEN as usize + 1);
        assert!(TraceWriter::new(Vec::new(), &name).is_err());
    }

    #[test]
    fn empty_trace_is_header_plus_terminator() {
        let bytes = TraceWriter::new(Vec::new(), "e").unwrap().finish().unwrap();
        // magic+version+len+name + terminator header + u64 total.
        assert_eq!(bytes.len(), 4 + 4 + 4 + 1 + 8 + 8);
    }

    #[test]
    fn bytes_written_tracks_sink_and_buffer() {
        let mut w = TraceWriter::with_chunk_records(Vec::new(), "t", 4).unwrap();
        let header = w.bytes_written();
        w.push(&instr(0x1000)).unwrap();
        assert!(w.bytes_written() > header, "buffered chunk counted");
        for i in 1..8 {
            w.push(&instr(0x1000 + i * 4)).unwrap();
        }
        assert_eq!(w.records_written(), 8);
        let total = w.bytes_written();
        let bytes = w.finish().unwrap();
        assert_eq!(bytes.len() as u64, total + 16, "terminator appended");
    }

    #[test]
    fn worst_case_records_never_emit_oversized_chunks() {
        use pif_types::{BranchInfo, BranchKind};
        // Maximum record capacity + records that encode to the maximum
        // ~31 bytes each (full-width PC/target/fall-through deltas): the
        // byte-based flush must cap every chunk at MAX_CHUNK_BYTES so the
        // reader accepts what the writer produced.
        let mut w =
            TraceWriter::with_chunk_records(Vec::new(), "worst", MAX_CHUNK_RECORDS).unwrap();
        let n = 2_300_000u64; // > MAX_CHUNK_BYTES / 31, forces a byte flush
        for i in 0..n {
            let pc = if i % 2 == 0 { u64::MAX / 2 } else { 1 };
            w.push(&RetiredInstr::branch(
                Address::new(pc),
                TrapLevel::Tl0,
                BranchInfo {
                    kind: BranchKind::IndirectCall,
                    taken: true,
                    taken_target: Address::new(pc.wrapping_add(u64::MAX / 3)),
                    fall_through: Address::new(pc.wrapping_sub(u64::MAX / 5)),
                },
            ))
            .unwrap();
        }
        let bytes = w.finish().unwrap();
        let info = crate::scan_info(bytes.as_slice()).unwrap();
        assert_eq!(info.records, n, "every record decodes back");
        assert!(info.chunks >= 2, "byte cap must have split the stream");
    }

    /// Scratch directory for atomic-writer tests; removed by each test.
    fn scratch(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("pif-trace-atomic-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn atomic_writer_publishes_only_on_finish() {
        let dir = scratch("finish");
        let dest = dir.join("out.pift");
        let mut w = AtomicTraceWriter::create(&dest, "atomic", 4).unwrap();
        for i in 0..100u64 {
            w.push(&instr(0x1000 + i * 4)).unwrap();
            assert!(!dest.exists(), "destination must not appear mid-record");
        }
        let bytes = w.finish().unwrap();
        assert!(dest.exists());
        assert_eq!(std::fs::metadata(&dest).unwrap().len(), bytes);
        let info = crate::scan_info(std::fs::File::open(&dest).unwrap()).unwrap();
        assert_eq!((info.records, info.name.as_str()), (100, "atomic"));
        // No temp litter.
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_writer_dropped_mid_record_leaves_nothing() {
        // The kill-mid-record contract, with drop standing in for the
        // kill: after abandoning a half-written trace the destination is
        // absent and the staging file is cleaned up.
        let dir = scratch("drop");
        let dest = dir.join("out.pift");
        let mut w = AtomicTraceWriter::create(&dest, "doomed", 4).unwrap();
        for i in 0..50u64 {
            w.push(&instr(0x2000 + i * 4)).unwrap();
        }
        drop(w);
        assert!(!dest.exists(), "abandoned record must not publish");
        assert_eq!(
            std::fs::read_dir(&dir).unwrap().count(),
            0,
            "staging file must be removed on drop"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_writer_replaces_existing_destination_atomically() {
        let dir = scratch("replace");
        let dest = dir.join("out.pift");
        // Seed a valid small trace, then overwrite with a bigger one.
        let mut w = AtomicTraceWriter::create(&dest, "old", 4).unwrap();
        w.push(&instr(0x10)).unwrap();
        w.finish().unwrap();
        let mut w = AtomicTraceWriter::create(&dest, "new", 4).unwrap();
        for i in 0..10u64 {
            w.push(&instr(0x3000 + i * 4)).unwrap();
        }
        w.finish().unwrap();
        let info = crate::scan_info(std::fs::File::open(&dest).unwrap()).unwrap();
        assert_eq!((info.records, info.name.as_str()), (10, "new"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sequential_trace_compresses_to_about_two_bytes_per_instr() {
        let mut w = TraceWriter::new(Vec::new(), "seq").unwrap();
        let n = 10_000u64;
        for i in 0..n {
            w.push(&instr(0x40_0000 + i * 4)).unwrap();
        }
        let bytes = w.finish().unwrap();
        let per_instr = bytes.len() as f64 / n as f64;
        assert!(per_instr < 2.2, "{per_instr} bytes/instr");
    }
}
