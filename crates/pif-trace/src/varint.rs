//! LEB128 varints and zigzag signed mapping — the primitives of the v2
//! record encoding.
//!
//! PC deltas between consecutive retired instructions are tiny (usually
//! +4 bytes); zigzag folds signed deltas into small unsigned values and
//! LEB128 stores them in as few bytes as their magnitude needs, so the
//! common sequential instruction costs one byte of PC instead of eight.

use crate::error::TraceDecodeError;

/// Maximum encoded length of a u64 LEB128 varint.
pub const MAX_VARINT_LEN: usize = 10;

/// Appends `value` to `out` as an unsigned LEB128 varint.
pub fn write_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads an unsigned LEB128 varint from the front of `data`, advancing it.
///
/// # Errors
///
/// `Corrupt` if the buffer ends mid-varint or the encoding overflows 64
/// bits.
pub fn read_varint(data: &mut &[u8]) -> Result<u64, TraceDecodeError> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    for i in 0..MAX_VARINT_LEN {
        let Some(&byte) = data.get(i) else {
            return Err(TraceDecodeError::Corrupt("truncated varint"));
        };
        let payload = (byte & 0x7f) as u64;
        // The 10th byte may only carry the final bit of a u64.
        if shift == 63 && payload > 1 {
            return Err(TraceDecodeError::Corrupt("varint overflows u64"));
        }
        value |= payload << shift;
        if byte & 0x80 == 0 {
            *data = &data[i + 1..];
            return Ok(value);
        }
        shift += 7;
    }
    Err(TraceDecodeError::Corrupt("varint too long"))
}

/// Zigzag-encodes a signed delta into an unsigned value with small
/// magnitudes near zero.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: u64) -> usize {
        let mut buf = Vec::new();
        write_varint(&mut buf, v);
        let mut slice = buf.as_slice();
        assert_eq!(read_varint(&mut slice).unwrap(), v);
        assert!(slice.is_empty());
        buf.len()
    }

    #[test]
    fn varint_round_trips_and_sizes() {
        assert_eq!(round_trip(0), 1);
        assert_eq!(round_trip(127), 1);
        assert_eq!(round_trip(128), 2);
        assert_eq!(round_trip(16_383), 2);
        assert_eq!(round_trip(16_384), 3);
        assert_eq!(round_trip(u64::MAX), 10);
    }

    #[test]
    fn varint_rejects_truncation() {
        let mut data: &[u8] = &[0x80, 0x80];
        assert_eq!(
            read_varint(&mut data),
            Err(TraceDecodeError::Corrupt("truncated varint"))
        );
    }

    #[test]
    fn varint_rejects_overlong_and_overflow() {
        let mut data: &[u8] = &[0x80; 11];
        assert!(read_varint(&mut data).is_err());
        // 10 bytes whose last byte carries more than the final u64 bit.
        let mut data: &[u8] = &[0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x02];
        assert_eq!(
            read_varint(&mut data),
            Err(TraceDecodeError::Corrupt("varint overflows u64"))
        );
    }

    #[test]
    fn zigzag_is_small_near_zero_and_invertible() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(4), 8);
        for v in [0i64, 1, -1, 4, -4, i64::MAX, i64::MIN, 123_456_789] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }
}
