//! The trace-codec error type, shared by every crate that reads traces.

use std::io;

/// Errors from decoding a serialized trace (either format version).
///
/// Non-I/O variants compare structurally with `==`, so tests can assert
/// on exact errors instead of `matches!` boilerplate. Two [`Io`] errors
/// never compare equal (underlying `io::Error`s have no meaningful
/// equality); compare [`kind`] when that distinction is enough.
///
/// [`Io`]: TraceDecodeError::Io
/// [`kind`]: TraceDecodeError::kind
///
/// # Example
///
/// ```
/// use pif_trace::{TraceDecodeError, TraceErrorKind};
///
/// let err = TraceDecodeError::BadVersion(99);
/// assert_eq!(err, TraceDecodeError::BadVersion(99));
/// assert_eq!(err.kind(), TraceErrorKind::BadVersion);
/// ```
#[derive(Debug)]
pub enum TraceDecodeError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a PIF trace file.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// Structurally invalid payload (truncated or corrupt).
    Corrupt(&'static str),
    /// A seek requested a record index beyond the end of the trace.
    ///
    /// Seeking *to* the end (`requested == total`) is not an error — it
    /// leaves the reader cleanly exhausted; only `requested > total`
    /// reports this, since such an index can never have existed and the
    /// caller's arithmetic is off.
    SeekPastEnd {
        /// The record index the caller asked for.
        requested: u64,
        /// Total records in the trace.
        total: u64,
    },
}

/// Discriminant-only view of [`TraceDecodeError`], for tests and callers
/// that dispatch on the failure class without caring about payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceErrorKind {
    /// Underlying I/O failure.
    Io,
    /// Not a PIF trace file.
    BadMagic,
    /// Unsupported format version.
    BadVersion,
    /// Structurally invalid payload.
    Corrupt,
    /// Seek beyond the end of the trace.
    SeekPastEnd,
}

impl TraceDecodeError {
    /// The failure class of this error.
    pub fn kind(&self) -> TraceErrorKind {
        match self {
            TraceDecodeError::Io(_) => TraceErrorKind::Io,
            TraceDecodeError::BadMagic => TraceErrorKind::BadMagic,
            TraceDecodeError::BadVersion(_) => TraceErrorKind::BadVersion,
            TraceDecodeError::Corrupt(_) => TraceErrorKind::Corrupt,
            TraceDecodeError::SeekPastEnd { .. } => TraceErrorKind::SeekPastEnd,
        }
    }
}

impl PartialEq for TraceDecodeError {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (TraceDecodeError::BadMagic, TraceDecodeError::BadMagic) => true,
            (TraceDecodeError::BadVersion(a), TraceDecodeError::BadVersion(b)) => a == b,
            (TraceDecodeError::Corrupt(a), TraceDecodeError::Corrupt(b)) => a == b,
            (
                TraceDecodeError::SeekPastEnd {
                    requested: ra,
                    total: ta,
                },
                TraceDecodeError::SeekPastEnd {
                    requested: rb,
                    total: tb,
                },
            ) => ra == rb && ta == tb,
            // io::Error carries no meaningful equality.
            _ => false,
        }
    }
}

impl std::fmt::Display for TraceDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceDecodeError::Io(e) => write!(f, "i/o error: {e}"),
            TraceDecodeError::BadMagic => f.write_str("not a PIF trace file"),
            TraceDecodeError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceDecodeError::Corrupt(what) => write!(f, "corrupt trace: {what}"),
            TraceDecodeError::SeekPastEnd { requested, total } => write!(
                f,
                "seek to record {requested} past the end of a {total}-record trace"
            ),
        }
    }
}

impl std::error::Error for TraceDecodeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceDecodeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceDecodeError {
    fn from(e: io::Error) -> Self {
        // `read_exact` reports a short read as UnexpectedEof; for a trace
        // payload that means the file was cut off, which every decode
        // path in this workspace reports as `Corrupt("truncated")`.
        if e.kind() == io::ErrorKind::UnexpectedEof {
            TraceDecodeError::Corrupt("truncated")
        } else {
            TraceDecodeError::Io(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structural_equality_on_non_io_variants() {
        assert_eq!(TraceDecodeError::BadMagic, TraceDecodeError::BadMagic);
        assert_eq!(
            TraceDecodeError::BadVersion(3),
            TraceDecodeError::BadVersion(3)
        );
        assert_ne!(
            TraceDecodeError::BadVersion(3),
            TraceDecodeError::BadVersion(4)
        );
        assert_eq!(
            TraceDecodeError::Corrupt("truncated"),
            TraceDecodeError::Corrupt("truncated")
        );
        assert_ne!(
            TraceDecodeError::Corrupt("truncated"),
            TraceDecodeError::BadMagic
        );
    }

    #[test]
    fn io_errors_never_compare_equal() {
        let a = TraceDecodeError::Io(io::Error::other("x"));
        let b = TraceDecodeError::Io(io::Error::other("x"));
        assert_ne!(a, b);
        assert_eq!(a.kind(), TraceErrorKind::Io);
    }

    #[test]
    fn unexpected_eof_becomes_corrupt() {
        let e: TraceDecodeError = io::Error::new(io::ErrorKind::UnexpectedEof, "short read").into();
        assert_eq!(e, TraceDecodeError::Corrupt("truncated"));
    }

    #[test]
    fn kinds_classify_all_variants() {
        assert_eq!(TraceDecodeError::BadMagic.kind(), TraceErrorKind::BadMagic);
        assert_eq!(
            TraceDecodeError::BadVersion(9).kind(),
            TraceErrorKind::BadVersion
        );
        assert_eq!(
            TraceDecodeError::Corrupt("x").kind(),
            TraceErrorKind::Corrupt
        );
        assert_eq!(
            TraceDecodeError::SeekPastEnd {
                requested: 5,
                total: 4
            }
            .kind(),
            TraceErrorKind::SeekPastEnd
        );
    }

    #[test]
    fn seek_past_end_compares_structurally_and_displays_both_numbers() {
        let e = TraceDecodeError::SeekPastEnd {
            requested: 7,
            total: 6,
        };
        assert_eq!(
            e,
            TraceDecodeError::SeekPastEnd {
                requested: 7,
                total: 6
            }
        );
        assert_ne!(
            e,
            TraceDecodeError::SeekPastEnd {
                requested: 8,
                total: 6
            }
        );
        assert!(
            e.to_string().contains('7') && e.to_string().contains('6'),
            "{e}"
        );
    }

    #[test]
    fn display_is_informative() {
        assert!(TraceDecodeError::BadVersion(7).to_string().contains('7'));
        assert!(TraceDecodeError::Corrupt("truncated")
            .to_string()
            .contains("truncated"));
    }
}
