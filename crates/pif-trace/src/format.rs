//! Shared format constants and the per-record v2 codec.
//!
//! See the crate-level docs for the full v1/v2 layout specification. This
//! module owns the byte-level details both the writer and reader use, so
//! the two can never drift apart.

use pif_types::{Address, BranchInfo, BranchKind, RetiredInstr, TrapLevel};

use crate::error::TraceDecodeError;
use crate::varint::{read_varint, unzigzag, write_varint, zigzag};

/// File magic shared by both format versions.
pub const MAGIC: &[u8; 4] = b"PIFT";
/// The legacy fixed-width record format.
pub const VERSION_V1: u32 = 1;
/// The chunked delta/varint format.
pub const VERSION_V2: u32 = 2;

/// Default records per v2 chunk. 8 Ki records keeps the resident set of
/// a streaming reader/writer around a few tens of kilobytes while
/// amortizing the 8-byte chunk header to ~0.001 bytes/record.
pub const DEFAULT_CHUNK_RECORDS: u32 = 8192;

/// Hard cap on a declared chunk record count; a header claiming more is
/// rejected as corrupt before any allocation.
pub const MAX_CHUNK_RECORDS: u32 = 1 << 24;

/// Hard cap on a declared chunk payload length (64 MiB).
pub const MAX_CHUNK_BYTES: u32 = 1 << 26;

/// Cap on the declared workload-name length in either version's header.
pub const MAX_NAME_LEN: u32 = 1 << 16;

// v2 record flag byte layout.
const TL_MASK: u8 = 0b0000_0011;
const HAS_BRANCH: u8 = 0b0000_0100;
const KIND_SHIFT: u8 = 3;
const KIND_MASK: u8 = 0b0011_1000;
const TAKEN: u8 = 0b0100_0000;
const IMPLICIT_FALL_THROUGH: u8 = 0b1000_0000;

/// Instruction width assumed by the implicit fall-through optimization
/// (`fall_through == pc + 4`, true for every branch the workload
/// generator emits).
const INSTR_BYTES: u64 = 4;

pub(crate) fn kind_to_bits(kind: BranchKind) -> u8 {
    match kind {
        BranchKind::Conditional => 0,
        BranchKind::Direct => 1,
        BranchKind::Call => 2,
        BranchKind::IndirectCall => 3,
        BranchKind::Return => 4,
    }
}

pub(crate) fn kind_from_bits(b: u8) -> Result<BranchKind, TraceDecodeError> {
    Ok(match b {
        0 => BranchKind::Conditional,
        1 => BranchKind::Direct,
        2 => BranchKind::Call,
        3 => BranchKind::IndirectCall,
        4 => BranchKind::Return,
        _ => return Err(TraceDecodeError::Corrupt("unknown branch kind")),
    })
}

/// Appends one v2 record to `buf`. `prev_pc` is the intra-chunk delta
/// base and must start at 0 for each chunk.
pub fn encode_record(buf: &mut Vec<u8>, instr: &RetiredInstr, prev_pc: &mut u64) {
    let pc = instr.pc.raw();
    let mut flags = instr.trap_level.index() as u8;
    if let Some(info) = instr.branch {
        flags |= HAS_BRANCH | (kind_to_bits(info.kind) << KIND_SHIFT);
        if info.taken {
            flags |= TAKEN;
        }
        if info.fall_through.raw() == pc.wrapping_add(INSTR_BYTES) {
            flags |= IMPLICIT_FALL_THROUGH;
        }
    }
    buf.push(flags);
    write_varint(buf, zigzag(pc.wrapping_sub(*prev_pc) as i64));
    *prev_pc = pc;
    if let Some(info) = instr.branch {
        write_varint(buf, zigzag(info.taken_target.raw().wrapping_sub(pc) as i64));
        if flags & IMPLICIT_FALL_THROUGH == 0 {
            write_varint(buf, zigzag(info.fall_through.raw().wrapping_sub(pc) as i64));
        }
    }
}

/// Decodes one v2 record from the front of `data`, advancing it.
pub fn decode_record(
    data: &mut &[u8],
    prev_pc: &mut u64,
) -> Result<RetiredInstr, TraceDecodeError> {
    let Some((&flags, rest)) = data.split_first() else {
        return Err(TraceDecodeError::Corrupt("truncated record"));
    };
    *data = rest;
    let tl_index = (flags & TL_MASK) as usize;
    if tl_index >= TrapLevel::COUNT {
        return Err(TraceDecodeError::Corrupt("invalid trap level"));
    }
    let trap_level = TrapLevel::from_index(tl_index);
    if flags & HAS_BRANCH == 0 && flags & !TL_MASK != 0 {
        return Err(TraceDecodeError::Corrupt("branch bits on non-branch"));
    }
    let pc = prev_pc.wrapping_add(unzigzag(read_varint(data)?) as u64);
    *prev_pc = pc;
    let branch = if flags & HAS_BRANCH != 0 {
        let kind = kind_from_bits((flags & KIND_MASK) >> KIND_SHIFT)?;
        let taken_target = pc.wrapping_add(unzigzag(read_varint(data)?) as u64);
        let fall_through = if flags & IMPLICIT_FALL_THROUGH != 0 {
            pc.wrapping_add(INSTR_BYTES)
        } else {
            pc.wrapping_add(unzigzag(read_varint(data)?) as u64)
        };
        Some(BranchInfo {
            kind,
            taken: flags & TAKEN != 0,
            taken_target: Address::new(taken_target),
            fall_through: Address::new(fall_through),
        })
    } else {
        None
    };
    Ok(RetiredInstr {
        pc: Address::new(pc),
        trap_level,
        branch,
    })
}

/// Batch-decodes a whole chunk payload into `out` (cleared first).
///
/// Semantically identical to calling [`decode_record`] `records` times
/// from a zeroed delta base — the proptests in
/// `tests/decode_batched.rs` hold the two paths equal — but the tight
/// loop over a flat output `Vec` keeps the varint decode
/// branch-predictable instead of interleaving it with per-record
/// consumer work. The caller reuses `out` across chunks, so steady-state
/// decoding allocates nothing.
pub fn decode_chunk(
    payload: &[u8],
    records: u32,
    out: &mut Vec<RetiredInstr>,
) -> Result<(), TraceDecodeError> {
    out.clear();
    out.reserve(records as usize);
    let mut slice = payload;
    let mut prev_pc = 0u64;
    for _ in 0..records {
        out.push(decode_record(&mut slice, &mut prev_pc)?);
    }
    if !slice.is_empty() {
        return Err(TraceDecodeError::Corrupt("trailing chunk bytes"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(instrs: &[RetiredInstr]) {
        let mut buf = Vec::new();
        let mut prev = 0u64;
        for i in instrs {
            encode_record(&mut buf, i, &mut prev);
        }
        let mut slice = buf.as_slice();
        let mut prev = 0u64;
        for i in instrs {
            assert_eq!(decode_record(&mut slice, &mut prev).unwrap(), *i);
        }
        assert!(slice.is_empty());
    }

    #[test]
    fn sequential_instrs_cost_two_bytes() {
        let mut buf = Vec::new();
        let mut prev = 0u64;
        encode_record(
            &mut buf,
            &RetiredInstr::simple(Address::new(0x40_0000), TrapLevel::Tl0),
            &mut prev,
        );
        let first = buf.len();
        encode_record(
            &mut buf,
            &RetiredInstr::simple(Address::new(0x40_0004), TrapLevel::Tl0),
            &mut prev,
        );
        assert_eq!(buf.len() - first, 2, "flags byte + 1-byte delta");
    }

    #[test]
    fn records_round_trip() {
        let b = BranchInfo {
            kind: BranchKind::Call,
            taken: true,
            taken_target: Address::new(0x50_0000),
            fall_through: Address::new(0x40_0008),
        };
        round_trip(&[
            RetiredInstr::simple(Address::new(0x40_0000), TrapLevel::Tl0),
            RetiredInstr::simple(Address::new(0x40_0004), TrapLevel::Tl1),
            RetiredInstr::branch(Address::new(0x40_0004), TrapLevel::Tl0, b),
            RetiredInstr::simple(Address::new(0), TrapLevel::Tl0),
            RetiredInstr::simple(Address::new(u64::MAX), TrapLevel::Tl0),
        ]);
    }

    #[test]
    fn explicit_fall_through_survives() {
        let b = BranchInfo {
            kind: BranchKind::Return,
            taken: true,
            taken_target: Address::new(0x10),
            fall_through: Address::new(0x9999),
        };
        round_trip(&[RetiredInstr::branch(Address::new(0x100), TrapLevel::Tl1, b)]);
    }

    #[test]
    fn rejects_garbage_flag_bits() {
        // Non-branch record with branch-only bits set.
        let mut data: &[u8] = &[TAKEN, 0x00];
        let mut prev = 0;
        assert_eq!(
            decode_record(&mut data, &mut prev),
            Err(TraceDecodeError::Corrupt("branch bits on non-branch"))
        );
        // Trap level 3 does not exist.
        let mut data: &[u8] = &[0b0000_0011, 0x00];
        assert_eq!(
            decode_record(&mut data, &mut prev),
            Err(TraceDecodeError::Corrupt("invalid trap level"))
        );
        // Branch kind 5 does not exist.
        let mut data: &[u8] = &[HAS_BRANCH | (5 << KIND_SHIFT), 0x00, 0x00, 0x00];
        assert_eq!(
            decode_record(&mut data, &mut prev),
            Err(TraceDecodeError::Corrupt("unknown branch kind"))
        );
    }
}
