//! Streaming trace reader: decodes v1 and v2 files record by record,
//! holding at most one chunk in memory — plus random access over v2
//! chunk headers ([`ChunkIndex`], [`TraceReader::seek_to_record`]) for
//! sampled simulation.

use std::io::{self, Read, Seek, SeekFrom};

use pif_types::{Address, BranchInfo, RetiredInstr, TrapLevel};

use crate::error::TraceDecodeError;
use crate::format::{
    decode_chunk, kind_from_bits, MAGIC, MAX_CHUNK_BYTES, MAX_CHUNK_RECORDS, MAX_NAME_LEN,
    VERSION_V1, VERSION_V2,
};

fn read_u32<R: Read>(r: &mut R) -> Result<u32, TraceDecodeError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, TraceDecodeError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Validates a v2 chunk header, rejecting absurd declarations before any
/// allocation or read happens. Every record costs at least 2 payload
/// bytes (flags + one varint byte), so a count the payload cannot hold is
/// corrupt on its face.
fn validate_chunk_header(records: u32, payload_len: u32) -> Result<(), TraceDecodeError> {
    if records > MAX_CHUNK_RECORDS {
        return Err(TraceDecodeError::Corrupt("chunk record count absurd"));
    }
    if payload_len > MAX_CHUNK_BYTES {
        return Err(TraceDecodeError::Corrupt("chunk payload absurd"));
    }
    if (payload_len as u64) < records as u64 * 2 {
        return Err(TraceDecodeError::Corrupt("record count exceeds payload"));
    }
    Ok(())
}

/// One chunk's position within a v2 trace file, as recorded in a
/// [`ChunkIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkEntry {
    /// Index of the first record stored in this chunk.
    pub first_record: u64,
    /// Records stored in this chunk.
    pub records: u32,
    /// Absolute byte offset of the chunk payload (just past its header).
    pub payload_offset: u64,
    /// Encoded payload length in bytes.
    pub payload_len: u32,
}

/// Random-access index over a v2 trace's chunks, built from the 8-byte
/// chunk headers alone (payloads are skipped, never decoded).
///
/// Because every chunk resets the PC delta base, any chunk can be decoded
/// in isolation; the index therefore turns "seek to record `n`" into one
/// `Seek` plus decoding at most one chunk's worth of prefix records —
/// the SimFlex-style random access that sampled simulation needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkIndex {
    entries: Vec<ChunkEntry>,
    total_records: u64,
}

impl ChunkIndex {
    /// The per-chunk entries, in file order.
    pub fn entries(&self) -> &[ChunkEntry] {
        &self.entries
    }

    /// Total records across all chunks (verified against the terminator).
    pub fn total_records(&self) -> u64 {
        self.total_records
    }

    /// The chunk containing `record`, or `None` when `record` is at or
    /// past the end of the trace.
    pub fn locate(&self, record: u64) -> Option<&ChunkEntry> {
        if record >= self.total_records {
            return None;
        }
        let i = self
            .entries
            .partition_point(|e| e.first_record + e.records as u64 <= record);
        self.entries.get(i)
    }
}

#[derive(Debug)]
enum State {
    /// Legacy fixed-width records; `remaining` counts down from the
    /// header's declared total.
    V1 { remaining: u64 },
    /// Chunked stream. Each chunk is batch-decoded on load into a flat,
    /// reusable scratch (`decoded`); iteration then serves records by
    /// index. Keeping the varint loop separate from the consumer keeps
    /// it branch-predictable, and both buffers are reused across chunks
    /// so steady-state decoding allocates nothing.
    V2 {
        /// Raw payload scratch, reused across chunks.
        raw: Vec<u8>,
        /// Batch-decoded records of the current chunk, reused.
        decoded: Vec<RetiredInstr>,
        /// Serve cursor into `decoded`.
        next: usize,
        records_read: u64,
        done: bool,
    },
    /// A decode error was reported; the iterator is fused.
    Failed,
}

impl State {
    /// Fresh v2 decode state positioned before the first chunk.
    fn v2_start() -> Self {
        State::V2 {
            raw: Vec::new(),
            decoded: Vec::new(),
            next: 0,
            records_read: 0,
            done: false,
        }
    }
}

/// Streaming reader over a serialized trace (either format version).
///
/// Iterates `Result<RetiredInstr, TraceDecodeError>`; after the first
/// error the iterator fuses (yields `None`). Memory use is bounded by one
/// chunk (v2) or one record (v1) regardless of trace length, which is
/// what enables out-of-core simulation via
/// `pif_sim::Engine::run_source`.
///
/// # Example
///
/// ```
/// use pif_trace::{TraceReader, TraceWriter};
/// use pif_types::{Address, RetiredInstr, TrapLevel};
///
/// let mut w = TraceWriter::new(Vec::new(), "demo").unwrap();
/// w.push(&RetiredInstr::simple(Address::new(0x40), TrapLevel::Tl0)).unwrap();
/// let bytes = w.finish().unwrap();
///
/// let mut reader = TraceReader::open(bytes.as_slice()).unwrap();
/// assert_eq!(reader.name(), "demo");
/// assert_eq!(reader.version(), 2);
/// let instrs: Vec<_> = reader.by_ref().collect::<Result<_, _>>().unwrap();
/// assert_eq!(instrs.len(), 1);
/// ```
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    source: R,
    name: String,
    version: u32,
    declared: Option<u64>,
    state: State,
    /// Byte offset where records (v1) or chunks (v2) begin.
    data_start: u64,
    /// Chunk index for random access; built by [`TraceReader::open_indexed`]
    /// or lazily by [`TraceReader::seek_to_record`] (v2 + `Seek` only).
    index: Option<ChunkIndex>,
}

impl<R: Read> TraceReader<R> {
    /// Opens a trace stream, reading and validating the header.
    ///
    /// # Errors
    ///
    /// [`TraceDecodeError::BadMagic`] if the stream is not a PIF trace,
    /// [`TraceDecodeError::BadVersion`] for unknown versions, and
    /// `Corrupt`/`Io` for malformed or unreadable headers.
    pub fn open(mut source: R) -> Result<Self, TraceDecodeError> {
        let mut magic = [0u8; 4];
        source.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(TraceDecodeError::BadMagic);
        }
        let version = read_u32(&mut source)?;
        if version != VERSION_V1 && version != VERSION_V2 {
            return Err(TraceDecodeError::BadVersion(version));
        }
        let name_len = read_u32(&mut source)?;
        if name_len > MAX_NAME_LEN {
            return Err(TraceDecodeError::Corrupt("unreasonable name length"));
        }
        let mut name_bytes = vec![0u8; name_len as usize];
        source.read_exact(&mut name_bytes)?;
        let name = String::from_utf8(name_bytes)
            .map_err(|_| TraceDecodeError::Corrupt("name is not UTF-8"))?;
        let header_bytes = (4 + 4 + 4 + name.len()) as u64;
        let (state, declared, data_start) = if version == VERSION_V1 {
            let count = read_u64(&mut source)?;
            (
                State::V1 { remaining: count },
                Some(count),
                header_bytes + 8,
            )
        } else {
            (State::v2_start(), None, header_bytes)
        };
        Ok(TraceReader {
            source,
            name,
            version,
            declared,
            state,
            data_start,
            index: None,
        })
    }

    /// Workload name from the file header.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Format version (1 or 2).
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Total record count, when known: from the header for v1, from the
    /// terminator (i.e. only after full iteration) for v2.
    pub fn declared_count(&self) -> Option<u64> {
        self.declared
    }

    /// Adapts this reader into an iterator of plain [`RetiredInstr`]s
    /// that stops at the first decode error and stashes it for later
    /// inspection — the shape `Engine::run_source` consumes.
    pub fn instrs(self) -> Instrs<R> {
        Instrs {
            reader: self,
            error: None,
        }
    }

    /// Hashes the remaining records with [`crate::TraceHasher`],
    /// consuming the reader.
    ///
    /// The digest depends only on record content, never on container
    /// format: a v1 file and its v2 conversion hash identically, as does
    /// the generator stream the file was recorded from.
    ///
    /// # Errors
    ///
    /// Returns the first decode error; records before it are not
    /// reflected in any output.
    pub fn content_hash(self) -> Result<u64, TraceDecodeError> {
        let mut hasher = crate::hash::TraceHasher::new();
        let mut instrs = self.instrs();
        for instr in &mut instrs {
            hasher.update(&instr);
        }
        match instrs.take_error() {
            Some(e) => Err(e),
            None => Ok(hasher.finish()),
        }
    }

    fn next_v1(&mut self) -> Result<Option<RetiredInstr>, TraceDecodeError> {
        let State::V1 { remaining } = &mut self.state else {
            unreachable!()
        };
        if *remaining == 0 {
            return Ok(None);
        }
        *remaining -= 1;
        let mut head = [0u8; 10];
        self.source.read_exact(&mut head)?;
        let pc = u64::from_le_bytes(head[0..8].try_into().expect("8-byte slice"));
        let tl_byte = head[8];
        if tl_byte as usize >= TrapLevel::COUNT {
            return Err(TraceDecodeError::Corrupt("invalid trap level"));
        }
        let trap_level = TrapLevel::from_index(tl_byte as usize);
        let branch = match head[9] {
            0 => None,
            1 => {
                let mut body = [0u8; 18];
                self.source.read_exact(&mut body)?;
                let kind = kind_from_bits(body[0])?;
                let taken = body[1] != 0;
                let taken_target = u64::from_le_bytes(body[2..10].try_into().expect("8 bytes"));
                let fall_through = u64::from_le_bytes(body[10..18].try_into().expect("8 bytes"));
                Some(BranchInfo {
                    kind,
                    taken,
                    taken_target: Address::new(taken_target),
                    fall_through: Address::new(fall_through),
                })
            }
            _ => return Err(TraceDecodeError::Corrupt("invalid branch flag")),
        };
        Ok(Some(RetiredInstr {
            pc: Address::new(pc),
            trap_level,
            branch,
        }))
    }

    fn next_v2(&mut self) -> Result<Option<RetiredInstr>, TraceDecodeError> {
        let State::V2 {
            raw,
            decoded,
            next,
            records_read,
            done,
        } = &mut self.state
        else {
            unreachable!()
        };
        if *done {
            return Ok(None);
        }
        if *next == decoded.len() {
            // Current chunk drained: batch-decode the next one (or the
            // terminator). Corruption anywhere in a chunk therefore
            // surfaces before any of its records are served.
            pif_fail::fail_point!("trace.read.chunk", |e: pif_fail::FailError| Err(
                TraceDecodeError::Io(std::io::Error::other(e.to_string()))
            ));
            let records = read_u32(&mut self.source)?;
            let payload_len = read_u32(&mut self.source)?;
            if records == 0 {
                // Terminator: payload is the total record count.
                if payload_len != 8 {
                    return Err(TraceDecodeError::Corrupt("malformed terminator"));
                }
                let total = read_u64(&mut self.source)?;
                if total != *records_read {
                    return Err(TraceDecodeError::Corrupt("record count mismatch"));
                }
                *done = true;
                self.declared = Some(total);
                return Ok(None);
            }
            validate_chunk_header(records, payload_len)?;
            raw.resize(payload_len as usize, 0);
            self.source.read_exact(raw)?;
            decode_chunk(raw, records, decoded)?;
            *next = 0;
        }
        let instr = decoded[*next];
        *next += 1;
        *records_read += 1;
        Ok(Some(instr))
    }

    /// The chunk index, when one has been built — by
    /// [`TraceReader::open_indexed`] or a previous
    /// [`TraceReader::seek_to_record`]. Always `None` for v1 files, which
    /// have no chunks.
    pub fn chunk_index(&self) -> Option<&ChunkIndex> {
        self.index.as_ref()
    }

    /// As [`TraceReader::instrs`] but borrowing, so the reader can be
    /// reused afterwards — e.g. seeked to another sample window between
    /// engine runs.
    pub fn instrs_mut(&mut self) -> InstrsMut<'_, R> {
        InstrsMut {
            reader: self,
            error: None,
        }
    }
}

impl<R: Read + Seek> TraceReader<R> {
    /// Opens a trace and eagerly builds its [`ChunkIndex`] (v2; a v1 file
    /// opens normally but has no chunks to index), leaving the reader
    /// positioned at the first record.
    ///
    /// Building the index reads only the 8-byte chunk headers and the
    /// terminator — payload bytes are seeked over, so indexing a
    /// multi-gigabyte trace costs one header read per chunk. As a side
    /// effect the total record count becomes available up front via
    /// [`TraceReader::declared_count`].
    ///
    /// # Errors
    ///
    /// Everything [`TraceReader::open`] reports, plus any structural
    /// corruption found while walking the chunk headers.
    pub fn open_indexed(source: R) -> Result<Self, TraceDecodeError> {
        let mut reader = Self::open(source)?;
        if reader.version == VERSION_V2 {
            reader.build_index()?;
        }
        Ok(reader)
    }

    /// Scans the v2 chunk headers into an index, then rewinds to the
    /// first chunk with fresh decode state.
    fn build_index(&mut self) -> Result<(), TraceDecodeError> {
        debug_assert_eq!(self.version, VERSION_V2);
        self.source.seek(SeekFrom::Start(self.data_start))?;
        let mut entries = Vec::new();
        let mut pos = self.data_start;
        let mut records = 0u64;
        loop {
            let count = read_u32(&mut self.source)?;
            let payload_len = read_u32(&mut self.source)?;
            pos += 8;
            if count == 0 {
                if payload_len != 8 {
                    return Err(TraceDecodeError::Corrupt("malformed terminator"));
                }
                let total = read_u64(&mut self.source)?;
                if total != records {
                    return Err(TraceDecodeError::Corrupt("record count mismatch"));
                }
                break;
            }
            validate_chunk_header(count, payload_len)?;
            entries.push(ChunkEntry {
                first_record: records,
                records: count,
                payload_offset: pos,
                payload_len,
            });
            pos = self
                .source
                .seek(SeekFrom::Current(payload_len as i64))
                .map_err(TraceDecodeError::from)?;
            records += count as u64;
        }
        self.declared = Some(records);
        self.index = Some(ChunkIndex {
            entries,
            total_records: records,
        });
        self.source.seek(SeekFrom::Start(self.data_start))?;
        self.state = State::v2_start();
        Ok(())
    }

    /// As [`TraceReader::open_indexed`] but installing a previously built
    /// [`ChunkIndex`] instead of rescanning the chunk headers — for
    /// concurrent samplers opening many readers over the same v2 file:
    /// the file is indexed once and each reader's open costs only the
    /// container-header read.
    ///
    /// The index is trusted to describe this file (it came from an
    /// earlier [`TraceReader::open_indexed`]/[`TraceReader::seek_to_record`]
    /// over the same bytes); a mismatched index surfaces as a decode
    /// error when its offsets land mid-record.
    ///
    /// # Errors
    ///
    /// Everything [`TraceReader::open`] reports, plus
    /// [`TraceDecodeError::Corrupt`] if the file is v1 (which has no
    /// chunks to index).
    pub fn open_with_index(source: R, index: ChunkIndex) -> Result<Self, TraceDecodeError> {
        let mut reader = Self::open(source)?;
        if reader.version != VERSION_V2 {
            return Err(TraceDecodeError::Corrupt("chunk index over a v1 trace"));
        }
        reader.declared = Some(index.total_records());
        reader.index = Some(index);
        Ok(reader)
    }

    /// Repositions the reader so the next record yielded is record `n`
    /// (0-based); seeking exactly to the end (`n == total`) leaves the
    /// reader cleanly exhausted, while `n > total` is a
    /// [`TraceDecodeError::SeekPastEnd`] — that index never existed, so
    /// the caller's window arithmetic is wrong and silently yielding an
    /// empty (or worse, clamped) stream would mask it. Subsequent
    /// iteration streams to the end of the trace exactly as if the first
    /// `n` records had been read and discarded.
    ///
    /// For v2 this is random access: the chunk index (built on first use
    /// if [`TraceReader::open_indexed`] was not used) locates the chunk
    /// holding `n`, one `Seek` lands on it, and at most `n`'s intra-chunk
    /// prefix is decoded — skipped regions of the trace are never
    /// decompressed. v1 files have no chunk structure, so the fallback
    /// rewinds and linearly skips `n` records.
    ///
    /// Seeking also recovers a reader whose previous iteration failed,
    /// since all decode state is rebuilt.
    ///
    /// # Errors
    ///
    /// [`TraceDecodeError::SeekPastEnd`] when `n` exceeds the total
    /// record count, I/O errors from seeking, and corruption in the
    /// chunk holding `n` (or, for v1, anywhere in the first `n`
    /// records).
    pub fn seek_to_record(&mut self, n: u64) -> Result<(), TraceDecodeError> {
        if self.version == VERSION_V1 {
            return self.seek_v1(n);
        }
        if self.index.is_none() {
            self.build_index()?;
        }
        let index = self.index.as_ref().expect("index built above");
        let total = index.total_records();
        let Some(entry) = index.locate(n).copied() else {
            if n > total {
                return Err(TraceDecodeError::SeekPastEnd {
                    requested: n,
                    total,
                });
            }
            // Exactly at the end: cleanly exhausted, terminator verified
            // by the index build.
            self.declared = Some(total);
            self.state = State::V2 {
                raw: Vec::new(),
                decoded: Vec::new(),
                next: 0,
                records_read: total,
                done: true,
            };
            return Ok(());
        };
        self.source.seek(SeekFrom::Start(entry.payload_offset))?;
        let mut raw = vec![0u8; entry.payload_len as usize];
        self.source.read_exact(&mut raw)?;
        // Batch-decode the whole chunk and start serving at `n`'s
        // intra-chunk offset: deltas chain from the chunk's base, so the
        // prefix must be decoded anyway (but only this chunk's — every
        // earlier chunk was skipped wholesale).
        let mut decoded = Vec::new();
        decode_chunk(&raw, entry.records, &mut decoded)?;
        self.state = State::V2 {
            raw,
            decoded,
            next: (n - entry.first_record) as usize,
            records_read: n,
            done: false,
        };
        Ok(())
    }

    /// v1 fallback: rewind to the first record and linearly decode-and-
    /// discard (fixed-width-ish records cannot be skipped blind because
    /// branch records are wider).
    fn seek_v1(&mut self, n: u64) -> Result<(), TraceDecodeError> {
        let total = self.declared.expect("v1 header carries a count");
        if n > total {
            return Err(TraceDecodeError::SeekPastEnd {
                requested: n,
                total,
            });
        }
        self.source.seek(SeekFrom::Start(self.data_start))?;
        self.state = State::V1 { remaining: total };
        for _ in 0..n {
            self.next_v1()?;
        }
        Ok(())
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Result<RetiredInstr, TraceDecodeError>;

    fn next(&mut self) -> Option<Self::Item> {
        let result = match &self.state {
            State::V1 { .. } => self.next_v1(),
            State::V2 { .. } => self.next_v2(),
            State::Failed => return None,
        };
        match result {
            Ok(Some(instr)) => Some(Ok(instr)),
            Ok(None) => None,
            Err(e) => {
                self.state = State::Failed;
                Some(Err(e))
            }
        }
    }
}

/// Iterator of plain [`RetiredInstr`]s over a [`TraceReader`].
///
/// Yields until end-of-trace or the first decode error; the error is
/// stashed rather than yielded, so this type satisfies
/// `Iterator<Item = RetiredInstr>` (and therefore
/// `pif_types::InstrSource`). Check [`Instrs::error`] after the run to
/// distinguish clean completion from a corrupt tail.
#[derive(Debug)]
pub struct Instrs<R: Read> {
    reader: TraceReader<R>,
    error: Option<TraceDecodeError>,
}

impl<R: Read> Instrs<R> {
    /// The decode error that stopped iteration, if any.
    pub fn error(&self) -> Option<&TraceDecodeError> {
        self.error.as_ref()
    }

    /// Takes ownership of the stashed decode error, if any.
    pub fn take_error(&mut self) -> Option<TraceDecodeError> {
        self.error.take()
    }

    /// The underlying reader (e.g. for name/version metadata).
    pub fn reader(&self) -> &TraceReader<R> {
        &self.reader
    }
}

impl<R: Read> Iterator for Instrs<R> {
    type Item = RetiredInstr;

    fn next(&mut self) -> Option<Self::Item> {
        if self.error.is_some() {
            return None;
        }
        match self.reader.next() {
            Some(Ok(instr)) => Some(instr),
            Some(Err(e)) => {
                self.error = Some(e);
                None
            }
            None => None,
        }
    }
}

/// Borrowing variant of [`Instrs`]: yields plain [`RetiredInstr`]s,
/// stashing the first decode error, without consuming the reader — so
/// the same reader can be seeked to another window and reused (the shape
/// sampled simulation drives).
#[derive(Debug)]
pub struct InstrsMut<'a, R: Read> {
    reader: &'a mut TraceReader<R>,
    error: Option<TraceDecodeError>,
}

impl<R: Read> InstrsMut<'_, R> {
    /// The decode error that stopped iteration, if any.
    pub fn error(&self) -> Option<&TraceDecodeError> {
        self.error.as_ref()
    }

    /// Takes ownership of the stashed decode error, if any.
    pub fn take_error(&mut self) -> Option<TraceDecodeError> {
        self.error.take()
    }
}

impl<R: Read> Iterator for InstrsMut<'_, R> {
    type Item = RetiredInstr;

    fn next(&mut self) -> Option<Self::Item> {
        if self.error.is_some() {
            return None;
        }
        match self.reader.next() {
            Some(Ok(instr)) => Some(instr),
            Some(Err(e)) => {
                self.error = Some(e);
                None
            }
            None => None,
        }
    }
}

/// Summary of a trace file, gathered without decoding record payloads
/// (v2 chunks are skipped via their headers; v1 records are walked).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceInfo {
    /// Workload name from the header.
    pub name: String,
    /// Format version (1 or 2).
    pub version: u32,
    /// Total records.
    pub records: u64,
    /// Number of data chunks (0 for v1, which is unchunked).
    pub chunks: u64,
    /// Total encoded size in bytes, header included.
    pub bytes: u64,
}

impl TraceInfo {
    /// Average encoded bytes per record.
    pub fn bytes_per_record(&self) -> f64 {
        if self.records == 0 {
            return 0.0;
        }
        self.bytes as f64 / self.records as f64
    }
}

/// Scans a trace stream's structure without materializing records.
///
/// For v2 this reads only the 8-byte chunk headers and skips payloads —
/// the "skippable chunks" fast path — then verifies the terminator's
/// total. For v1 it walks records (they are not skippable) but allocates
/// nothing.
///
/// # Errors
///
/// Any header/structure corruption or I/O failure.
pub fn scan_info<R: Read>(source: R) -> Result<TraceInfo, TraceDecodeError> {
    let mut reader = TraceReader::open(source)?;
    let header_bytes = (4 + 4 + 4 + reader.name.len()) as u64;
    if reader.version == VERSION_V1 {
        let declared = reader.declared_count().expect("v1 header carries a count");
        let mut bytes = header_bytes + 8;
        for result in reader.by_ref() {
            bytes += if result?.branch.is_some() { 28 } else { 10 };
        }
        Ok(TraceInfo {
            name: reader.name,
            version: VERSION_V1,
            records: declared,
            chunks: 0,
            bytes,
        })
    } else {
        let mut bytes = header_bytes;
        let mut records = 0u64;
        let mut chunks = 0u64;
        loop {
            let count = read_u32(&mut reader.source)?;
            let payload_len = read_u32(&mut reader.source)?;
            bytes += 8;
            if count == 0 {
                if payload_len != 8 {
                    return Err(TraceDecodeError::Corrupt("malformed terminator"));
                }
                let total = read_u64(&mut reader.source)?;
                bytes += 8;
                if total != records {
                    return Err(TraceDecodeError::Corrupt("record count mismatch"));
                }
                return Ok(TraceInfo {
                    name: reader.name,
                    version: VERSION_V2,
                    records,
                    chunks,
                    bytes,
                });
            }
            validate_chunk_header(count, payload_len)?;
            let skipped = io::copy(
                &mut reader.source.by_ref().take(payload_len as u64),
                &mut io::sink(),
            )
            .map_err(TraceDecodeError::from)?;
            if skipped != payload_len as u64 {
                return Err(TraceDecodeError::Corrupt("truncated"));
            }
            bytes += payload_len as u64;
            records += count as u64;
            chunks += 1;
        }
    }
}

/// Encodes a slice of instructions as an in-memory v2 trace.
pub fn encode_v2(name: &str, instrs: &[RetiredInstr]) -> Vec<u8> {
    let mut writer = crate::TraceWriter::new(Vec::new(), name).expect("Vec sink cannot fail");
    for instr in instrs {
        writer.push(instr).expect("Vec sink cannot fail");
    }
    writer.finish().expect("Vec sink cannot fail")
}

/// Decodes an in-memory trace of either version into `(name, records)`.
///
/// # Errors
///
/// Any decode error; unlike the streaming path this materializes the
/// whole trace, so prefer [`TraceReader`] for large files.
pub fn decode(data: &[u8]) -> Result<(String, Vec<RetiredInstr>), TraceDecodeError> {
    let mut reader = TraceReader::open(data)?;
    // A v1 header's count is untrusted; every v1 record costs at least
    // 10 bytes, so the input length bounds any sane preallocation (the
    // same fail-fast reasoning as decode_trace's count check).
    let plausible = (data.len() / 10) as u64;
    let mut instrs =
        Vec::with_capacity(reader.declared_count().unwrap_or(0).min(plausible) as usize);
    for result in reader.by_ref() {
        instrs.push(result?);
    }
    Ok((reader.name, instrs))
}
