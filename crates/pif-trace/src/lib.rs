//! Streaming, compressed trace storage for the PIF reproduction.
//!
//! The paper's results come from multi-billion-instruction server traces;
//! this crate makes traces of that scale first-class artifacts. It defines
//! the chunked, delta/varint-compressed **v2** format, streaming
//! [`TraceWriter`]/[`TraceReader`] endpoints that hold at most one chunk
//! in memory, and backward-compatible decoding of the legacy **v1** files
//! written by `pif_workloads::io::encode_trace`.
//!
//! # Format specification
//!
//! Both versions share a little-endian container header:
//!
//! ```text
//! magic   "PIFT"           4 bytes
//! version u32              1 or 2
//! name    u32 length + UTF-8 bytes
//! ```
//!
//! ## v1 (legacy, fixed-width)
//!
//! ```text
//! count   u64              number of records
//! records count × (10 or 28 bytes)
//!   pc          u64
//!   trap_level  u8
//!   has_branch  u8         0 | 1
//!   if has_branch:
//!     kind         u8      0..=4
//!     taken        u8
//!     taken_target u64
//!     fall_through u64
//! ```
//!
//! ## v2 (chunked, delta/varint)
//!
//! After the header, a sequence of chunks, each independently decodable
//! (the PC delta base resets per chunk), followed by a terminator:
//!
//! ```text
//! chunk:
//!   record_count u32       > 0
//!   payload_len  u32       bytes of encoded records
//!   payload      payload_len bytes
//! terminator:
//!   0u32, 8u32, total_record_count u64
//! ```
//!
//! The chunk header lets readers *skip* payloads they do not need (see
//! [`scan_info`]), and the terminator distinguishes a cleanly sealed file
//! from a truncated one. Within a payload, each record is:
//!
//! ```text
//! flags    u8
//!   bits 0-1  trap level index
//!   bit  2    has_branch
//!   bits 3-5  branch kind           (branch only)
//!   bit  6    taken                 (branch only)
//!   bit  7    fall_through == pc+4  (branch only)
//! pc       varint zigzag(pc - prev_pc)
//! if has_branch:
//!   taken_target varint zigzag(taken_target - pc)
//!   if bit 7 clear:
//!     fall_through varint zigzag(fall_through - pc)
//! ```
//!
//! Sequential instructions (`Δpc = +4`) therefore cost 2 bytes instead of
//! v1's 10, and branches — whose targets are overwhelmingly nearby and
//! whose fall-through is almost always `pc + 4` — cost 4–6 bytes instead
//! of 28. On the synthetic server workloads this is a 4–6× size
//! reduction.
//!
//! # Random access and sampling
//!
//! Because every chunk resets its delta base, v2 chunks decode
//! independently, and the 8-byte headers alone describe the record
//! layout. [`TraceReader::open_indexed`] scans just those headers into a
//! [`ChunkIndex`] (payloads are seeked over), after which
//! [`TraceReader::seek_to_record`] jumps to any record by decoding at
//! most one chunk prefix — the primitive behind `pif_sim::sampling`'s
//! SimFlex-style sampled simulation. v1 files, having no chunks, fall
//! back to a linear skip.
//!
//! # Out-of-core simulation
//!
//! [`TraceReader::instrs`] yields an `Iterator<Item = RetiredInstr>`,
//! which implements `pif_types::InstrSource`; feed it to
//! `pif_sim::Engine::run_source` to simulate a trace far larger than RAM:
//!
//! ```
//! use pif_trace::{TraceReader, TraceWriter};
//! use pif_types::{Address, InstrSource, RetiredInstr, TrapLevel};
//!
//! // Record (streaming, bounded memory)...
//! let mut w = TraceWriter::new(Vec::new(), "loop").unwrap();
//! for i in 0..50_000u64 {
//!     let pc = Address::new((i % 512) * 4);
//!     w.push(&RetiredInstr::simple(pc, TrapLevel::Tl0)).unwrap();
//! }
//! let file = w.finish().unwrap();
//!
//! // ...then replay (streaming, bounded memory).
//! let mut source = TraceReader::open(file.as_slice()).unwrap().instrs();
//! let mut n = 0u64;
//! while source.next_instr().is_some() {
//!     n += 1;
//! }
//! assert_eq!(n, 50_000);
//! assert!(source.error().is_none());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod error;
mod format;
pub mod hash;
mod reader;
mod varint;
mod writer;

pub use error::{TraceDecodeError, TraceErrorKind};
pub use format::{
    DEFAULT_CHUNK_RECORDS, MAGIC, MAX_CHUNK_BYTES, MAX_CHUNK_RECORDS, MAX_NAME_LEN, VERSION_V1,
    VERSION_V2,
};
pub use hash::{content_hash, TraceHasher};
pub use reader::{
    decode, encode_v2, scan_info, ChunkEntry, ChunkIndex, Instrs, InstrsMut, TraceInfo, TraceReader,
};
pub use writer::{AtomicTraceWriter, TraceWriter};

/// v2 codec internals, exposed for differential tests
/// (`tests/decode_batched.rs`) that hold the batched chunk decode equal
/// to a record-at-a-time reference decode. Not a stable API.
#[doc(hidden)]
pub mod codec {
    pub use crate::format::{decode_chunk, decode_record, encode_record};
}

#[cfg(test)]
mod tests {
    use super::*;
    use pif_types::{Address, BranchInfo, BranchKind, RetiredInstr, TrapLevel};

    pub(crate) fn branchy_trace(n: u64) -> Vec<RetiredInstr> {
        (0..n)
            .map(|i| {
                let pc = Address::new(0x40_0000 + (i % 4096) * 4);
                if i % 7 == 3 {
                    RetiredInstr::branch(
                        pc,
                        if i % 31 == 0 {
                            TrapLevel::Tl1
                        } else {
                            TrapLevel::Tl0
                        },
                        BranchInfo {
                            kind: match i % 5 {
                                0 => BranchKind::Conditional,
                                1 => BranchKind::Direct,
                                2 => BranchKind::Call,
                                3 => BranchKind::IndirectCall,
                                _ => BranchKind::Return,
                            },
                            taken: i % 3 != 0,
                            taken_target: Address::new(0x40_0000 + (i * 37 % 8192) * 4),
                            fall_through: pc.offset(4),
                        },
                    )
                } else {
                    RetiredInstr::simple(pc, TrapLevel::Tl0)
                }
            })
            .collect()
    }

    #[test]
    fn v2_round_trips_across_chunk_boundaries() {
        let instrs = branchy_trace(1000);
        for chunk in [1u32, 2, 3, 7, 255, 1000, 4096] {
            let mut w = TraceWriter::with_chunk_records(Vec::new(), "x", chunk).unwrap();
            w.extend(instrs.iter().copied()).unwrap();
            let bytes = w.finish().unwrap();
            let (name, back) = decode(&bytes).unwrap();
            assert_eq!(name, "x");
            assert_eq!(back, instrs, "chunk size {chunk}");
        }
    }

    #[test]
    fn v2_truncation_fails_cleanly_everywhere() {
        let instrs = branchy_trace(300);
        let mut w = TraceWriter::with_chunk_records(Vec::new(), "t", 64).unwrap();
        w.extend(instrs.iter().copied()).unwrap();
        let bytes = w.finish().unwrap();
        for cut in 0..bytes.len() {
            assert!(
                decode(&bytes[..cut]).is_err(),
                "prefix of {cut}/{} bytes decoded successfully",
                bytes.len()
            );
        }
        assert!(decode(&bytes).is_ok());
    }

    #[test]
    fn v2_single_byte_corruption_never_panics() {
        let instrs = branchy_trace(200);
        let bytes = encode_v2("c", &instrs);
        for pos in 0..bytes.len() {
            let mut mutated = bytes.clone();
            mutated[pos] ^= 0xff;
            let _ = decode(&mutated); // must not panic; may or may not error
        }
    }

    #[test]
    fn open_rejects_bad_magic_and_version() {
        assert_eq!(
            TraceReader::open(&b"NOPE\x02\x00\x00\x00"[..]).err(),
            Some(TraceDecodeError::BadMagic)
        );
        let mut data = Vec::new();
        data.extend_from_slice(MAGIC);
        data.extend_from_slice(&99u32.to_le_bytes());
        assert_eq!(
            TraceReader::open(data.as_slice()).err(),
            Some(TraceDecodeError::BadVersion(99))
        );
    }

    #[test]
    fn open_rejects_absurd_name_length() {
        let mut data = Vec::new();
        data.extend_from_slice(MAGIC);
        data.extend_from_slice(&VERSION_V2.to_le_bytes());
        data.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            TraceReader::open(data.as_slice()).err(),
            Some(TraceDecodeError::Corrupt("unreasonable name length"))
        );
    }

    #[test]
    fn absurd_chunk_count_fails_fast() {
        // Header + a chunk declaring 1M records in a 4-byte payload.
        let mut data = encode_v2("fast", &[]);
        data.truncate(data.len() - 16); // strip terminator
        data.extend_from_slice(&1_000_000u32.to_le_bytes());
        data.extend_from_slice(&4u32.to_le_bytes());
        data.extend_from_slice(&[0u8; 4]);
        let mut reader = TraceReader::open(data.as_slice()).unwrap();
        assert_eq!(
            reader.next(),
            Some(Err(TraceDecodeError::Corrupt(
                "record count exceeds payload"
            )))
        );
        assert_eq!(reader.next(), None, "iterator fuses after error");
    }

    #[test]
    fn missing_terminator_is_truncation() {
        let instrs = branchy_trace(10);
        let bytes = encode_v2("t", &instrs);
        let cut = &bytes[..bytes.len() - 16];
        let (sent, err) = {
            let mut out = Vec::new();
            let mut reader = TraceReader::open(cut).unwrap();
            let mut err = None;
            for r in reader.by_ref() {
                match r {
                    Ok(i) => out.push(i),
                    Err(e) => err = Some(e),
                }
            }
            (out, err)
        };
        assert_eq!(sent, instrs, "records before the cut still decode");
        assert_eq!(err, Some(TraceDecodeError::Corrupt("truncated")));
    }

    #[test]
    fn terminator_count_mismatch_detected() {
        let instrs = branchy_trace(5);
        let mut bytes = encode_v2("m", &instrs);
        let len = bytes.len();
        bytes[len - 8..].copy_from_slice(&99u64.to_le_bytes());
        let mut reader = TraceReader::open(bytes.as_slice()).unwrap();
        let last = reader.by_ref().last();
        assert_eq!(
            last,
            Some(Err(TraceDecodeError::Corrupt("record count mismatch")))
        );
    }

    #[test]
    fn scan_info_skips_payloads_and_matches_decode() {
        let instrs = branchy_trace(10_000);
        let mut w = TraceWriter::with_chunk_records(Vec::new(), "scan", 1024).unwrap();
        w.extend(instrs.iter().copied()).unwrap();
        let bytes = w.finish().unwrap();
        let info = scan_info(bytes.as_slice()).unwrap();
        assert_eq!(info.name, "scan");
        assert_eq!(info.version, VERSION_V2);
        assert_eq!(info.records, 10_000);
        assert_eq!(info.chunks, 10_000_u64.div_ceil(1024));
        assert_eq!(info.bytes, bytes.len() as u64);
        assert!(info.bytes_per_record() > 0.0);
    }

    #[test]
    fn instrs_adapter_stashes_errors() {
        let bytes = encode_v2("e", &branchy_trace(100));
        let mut good = TraceReader::open(bytes.as_slice()).unwrap().instrs();
        assert_eq!(good.by_ref().count(), 100);
        assert!(good.error().is_none());
        assert_eq!(good.reader().name(), "e");

        let cut = &bytes[..bytes.len() - 20];
        let mut bad = TraceReader::open(cut).unwrap().instrs();
        let n = bad.by_ref().count();
        assert!(n <= 100);
        assert!(bad.error().is_some());
        assert!(bad.take_error().is_some());
        assert!(bad.error().is_none());
    }

    #[test]
    fn empty_v2_trace_round_trips() {
        let bytes = encode_v2("empty", &[]);
        let (name, instrs) = decode(&bytes).unwrap();
        assert_eq!(name, "empty");
        assert!(instrs.is_empty());
        let info = scan_info(bytes.as_slice()).unwrap();
        assert_eq!(info.records, 0);
        assert_eq!(info.chunks, 0);
    }

    #[test]
    fn writer_reports_compression_on_repetitive_code() {
        // A tight loop with calls: the dominant patterns of server code.
        let instrs = branchy_trace(50_000);
        let v2 = encode_v2("ratio", &instrs);
        let v1_size: usize = instrs
            .iter()
            .map(|i| if i.branch.is_some() { 28 } else { 10 })
            .sum::<usize>()
            + 16;
        assert!(
            v2.len() * 2 < v1_size,
            "v2 {} bytes vs v1 {} bytes",
            v2.len(),
            v1_size
        );
    }
}

#[cfg(test)]
mod seek_tests {
    use std::io::Cursor;

    use super::*;
    use crate::tests::branchy_trace;
    use pif_types::RetiredInstr;

    /// Hand-rolled v1 encoder (the legacy writer lives in
    /// `pif_workloads::io`, which this crate cannot depend on); layout
    /// from the crate-level spec.
    pub(crate) fn encode_v1(name: &str, instrs: &[RetiredInstr]) -> Vec<u8> {
        let mut b = Vec::new();
        b.extend_from_slice(MAGIC);
        b.extend_from_slice(&VERSION_V1.to_le_bytes());
        b.extend_from_slice(&(name.len() as u32).to_le_bytes());
        b.extend_from_slice(name.as_bytes());
        b.extend_from_slice(&(instrs.len() as u64).to_le_bytes());
        for i in instrs {
            b.extend_from_slice(&i.pc.raw().to_le_bytes());
            b.push(i.trap_level.index() as u8);
            match i.branch {
                None => b.push(0),
                Some(info) => {
                    b.push(1);
                    b.push(match info.kind {
                        pif_types::BranchKind::Conditional => 0,
                        pif_types::BranchKind::Direct => 1,
                        pif_types::BranchKind::Call => 2,
                        pif_types::BranchKind::IndirectCall => 3,
                        pif_types::BranchKind::Return => 4,
                    });
                    b.push(info.taken as u8);
                    b.extend_from_slice(&info.taken_target.raw().to_le_bytes());
                    b.extend_from_slice(&info.fall_through.raw().to_le_bytes());
                }
            }
        }
        b
    }

    fn collect_rest<R: std::io::Read>(reader: &mut TraceReader<R>) -> Vec<RetiredInstr> {
        reader
            .by_ref()
            .collect::<Result<Vec<_>, _>>()
            .expect("clean tail")
    }

    #[test]
    fn open_indexed_matches_scan_info() {
        let instrs = branchy_trace(5_000);
        let mut w = TraceWriter::with_chunk_records(Vec::new(), "idx", 512).unwrap();
        w.extend(instrs.iter().copied()).unwrap();
        let bytes = w.finish().unwrap();
        let info = scan_info(bytes.as_slice()).unwrap();

        let reader = TraceReader::open_indexed(Cursor::new(&bytes)).unwrap();
        let index = reader.chunk_index().expect("v2 builds an index");
        assert_eq!(index.entries().len() as u64, info.chunks);
        assert_eq!(index.total_records(), info.records);
        assert_eq!(reader.declared_count(), Some(info.records));
        // Entries tile the record space contiguously.
        let mut next = 0u64;
        for e in index.entries() {
            assert_eq!(e.first_record, next);
            next += e.records as u64;
        }
        assert_eq!(next, info.records);
    }

    #[test]
    fn index_locates_boundary_records() {
        let instrs = branchy_trace(1_000);
        let mut w = TraceWriter::with_chunk_records(Vec::new(), "loc", 100).unwrap();
        w.extend(instrs.iter().copied()).unwrap();
        let bytes = w.finish().unwrap();
        let reader = TraceReader::open_indexed(Cursor::new(&bytes)).unwrap();
        let index = reader.chunk_index().unwrap();
        for n in [0u64, 1, 99, 100, 101, 550, 999] {
            let e = index.locate(n).unwrap();
            assert!(e.first_record <= n && n < e.first_record + e.records as u64);
        }
        assert!(index.locate(1_000).is_none());
        assert!(index.locate(u64::MAX).is_none());
    }

    #[test]
    fn seek_yields_exact_tail_at_chunk_boundaries() {
        let instrs = branchy_trace(1_000);
        let mut w = TraceWriter::with_chunk_records(Vec::new(), "s", 128).unwrap();
        w.extend(instrs.iter().copied()).unwrap();
        let bytes = w.finish().unwrap();
        let mut reader = TraceReader::open_indexed(Cursor::new(&bytes)).unwrap();
        for n in [0usize, 1, 127, 128, 129, 500, 767, 999, 1_000] {
            reader.seek_to_record(n as u64).unwrap();
            assert_eq!(collect_rest(&mut reader), instrs[n..], "seek to {n}");
        }
    }

    #[test]
    fn seek_to_total_is_empty_but_past_total_is_a_typed_error() {
        let instrs = branchy_trace(50);
        let bytes = encode_v2("end", &instrs);
        let mut reader = TraceReader::open_indexed(Cursor::new(&bytes)).unwrap();
        // n == total: cleanly exhausted, not an error.
        reader.seek_to_record(50).unwrap();
        assert_eq!(reader.next(), None);
        assert_eq!(reader.declared_count(), Some(50));
        // n > total: the index can never have existed — typed error.
        for n in [51u64, 10_000, u64::MAX] {
            assert_eq!(
                reader.seek_to_record(n).err(),
                Some(TraceDecodeError::SeekPastEnd {
                    requested: n,
                    total: 50
                }),
                "seek to {n}"
            );
        }
        // A rejected seek does not poison the reader.
        reader.seek_to_record(49).unwrap();
        assert_eq!(collect_rest(&mut reader), instrs[49..]);
    }

    #[test]
    fn seek_works_backwards_and_repeatedly() {
        let instrs = branchy_trace(600);
        let mut w = TraceWriter::with_chunk_records(Vec::new(), "b", 64).unwrap();
        w.extend(instrs.iter().copied()).unwrap();
        let bytes = w.finish().unwrap();
        let mut reader = TraceReader::open_indexed(Cursor::new(&bytes)).unwrap();
        for n in [400usize, 20, 590, 0, 300] {
            reader.seek_to_record(n as u64).unwrap();
            let got: Vec<_> = reader.instrs_mut().take(5).collect();
            assert_eq!(got, instrs[n..(n + 5).min(instrs.len())], "window at {n}");
        }
    }

    #[test]
    fn seek_builds_index_lazily_on_plain_open() {
        let bytes = encode_v2("lazy", &branchy_trace(300));
        let mut reader = TraceReader::open(Cursor::new(&bytes)).unwrap();
        assert!(reader.chunk_index().is_none());
        reader.seek_to_record(100).unwrap();
        assert!(reader.chunk_index().is_some());
        assert_eq!(collect_rest(&mut reader).len(), 200);
    }

    #[test]
    fn seek_recovers_a_failed_reader() {
        let instrs = branchy_trace(200);
        let mut w = TraceWriter::with_chunk_records(Vec::new(), "r", 32).unwrap();
        w.extend(instrs.iter().copied()).unwrap();
        let mut bytes = w.finish().unwrap();
        // Corrupt the very first record's flags byte (branch bits without
        // the branch flag): iteration fails immediately, but the chunk
        // structure and terminator stay valid, so seeking past the
        // corruption recovers the reader.
        let flags_at = (4 + 4 + 4 + 1) + 8; // header(name "r") + chunk header
        bytes[flags_at] = 0b0100_0000;
        let mut bad = TraceReader::open(Cursor::new(&bytes)).unwrap();
        assert!(matches!(bad.next(), Some(Err(_))), "corruption detected");
        assert_eq!(bad.next(), None, "iterator fused");
        // Records 32.. live in later chunks, untouched by the corruption.
        bad.seek_to_record(150).unwrap();
        let tail: Vec<_> = bad.instrs_mut().collect();
        assert_eq!(tail, instrs[150..], "seek rebuilds decode state");
    }

    #[test]
    fn open_with_index_skips_the_rescan_but_seeks_identically() {
        let instrs = branchy_trace(900);
        let mut w = TraceWriter::with_chunk_records(Vec::new(), "share", 128).unwrap();
        w.extend(instrs.iter().copied()).unwrap();
        let bytes = w.finish().unwrap();
        let indexed = TraceReader::open_indexed(Cursor::new(&bytes)).unwrap();
        let index = indexed.chunk_index().unwrap().clone();

        let mut shared = TraceReader::open_with_index(Cursor::new(&bytes), index.clone()).unwrap();
        assert_eq!(shared.declared_count(), Some(900));
        assert_eq!(shared.chunk_index(), Some(&index));
        for n in [700usize, 0, 129, 899, 900] {
            shared.seek_to_record(n as u64).unwrap();
            assert_eq!(collect_rest(&mut shared), instrs[n..], "seek to {n}");
        }

        let v1 = encode_v1("v1", &instrs);
        assert_eq!(
            TraceReader::open_with_index(Cursor::new(&v1), index).err(),
            Some(TraceDecodeError::Corrupt("chunk index over a v1 trace"))
        );
    }

    #[test]
    fn v1_seek_falls_back_to_linear_skip() {
        let instrs = branchy_trace(400);
        let bytes = encode_v1("v1seek", &instrs);
        let mut reader = TraceReader::open(Cursor::new(&bytes)).unwrap();
        assert_eq!(reader.version(), 1);
        assert!(reader.chunk_index().is_none(), "v1 has no chunks");
        for n in [0usize, 1, 250, 399, 400] {
            reader.seek_to_record(n as u64).unwrap();
            assert_eq!(collect_rest(&mut reader), instrs[n..], "v1 seek to {n}");
        }
        // Same boundary contract as v2: past-the-end is a typed error
        // (the old behavior silently clamped to an empty tail).
        for n in [401u64, 500, u64::MAX] {
            assert_eq!(
                reader.seek_to_record(n).err(),
                Some(TraceDecodeError::SeekPastEnd {
                    requested: n,
                    total: 400
                }),
                "v1 seek to {n}"
            );
        }
        reader.seek_to_record(399).unwrap();
        assert_eq!(collect_rest(&mut reader), instrs[399..]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use pif_types::{Address, BranchInfo, BranchKind, RetiredInstr, TrapLevel};
    use proptest::prelude::*;

    fn kind_of(k: u8) -> BranchKind {
        match k {
            0 => BranchKind::Conditional,
            1 => BranchKind::Direct,
            2 => BranchKind::Call,
            3 => BranchKind::IndirectCall,
            _ => BranchKind::Return,
        }
    }

    fn instr_strategy() -> impl Strategy<Value = RetiredInstr> {
        (
            any::<u64>(),
            0usize..TrapLevel::COUNT,
            proptest::option::of((0u8..5, any::<bool>(), any::<u64>(), any::<u64>())),
        )
            .prop_map(|(pc, tl, branch)| RetiredInstr {
                pc: Address::new(pc),
                trap_level: TrapLevel::from_index(tl),
                branch: branch.map(|(k, taken, target, fall)| BranchInfo {
                    kind: kind_of(k),
                    taken,
                    taken_target: Address::new(target),
                    fall_through: Address::new(fall),
                }),
            })
    }

    proptest! {
        #[test]
        fn arbitrary_traces_round_trip_v2(
            name in "[a-zA-Z0-9_-]{0,24}",
            instrs in proptest::collection::vec(instr_strategy(), 0..300),
            chunk in 1u32..64,
        ) {
            let mut w = TraceWriter::with_chunk_records(Vec::new(), &name, chunk).unwrap();
            w.extend(instrs.iter().copied()).unwrap();
            let bytes = w.finish().unwrap();
            let (back_name, back) = decode(&bytes).unwrap();
            prop_assert_eq!(back_name, name);
            prop_assert_eq!(back, instrs);
        }

        #[test]
        fn truncation_never_panics(
            instrs in proptest::collection::vec(instr_strategy(), 0..100),
            cut_seed in 0usize..4096,
        ) {
            let bytes = encode_v2("p", &instrs);
            let cut = cut_seed % (bytes.len() + 1);
            let _ = decode(&bytes[..cut]);
            let _ = scan_info(&bytes[..cut]);
        }

        #[test]
        fn random_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..512)) {
            let _ = decode(&data);
            let _ = scan_info(data.as_slice());
        }

        /// The sampling contract: `seek_to_record(n)` then stream-to-end
        /// must equal the tail of a full decode for every `n <= total`
        /// (including `n == total`, the empty tail), and `n > total`
        /// must be the typed `SeekPastEnd` error — for arbitrary record
        /// counts straddling chunk boundaries.
        #[test]
        fn v2_seek_then_stream_equals_tail(
            instrs in proptest::collection::vec(instr_strategy(), 0..300),
            chunk in 1u32..48,
            seek_seed in 0usize..4096,
        ) {
            let mut w = TraceWriter::with_chunk_records(Vec::new(), "sp", chunk).unwrap();
            w.extend(instrs.iter().copied()).unwrap();
            let bytes = w.finish().unwrap();
            // Bias targets toward boundaries: straddle n*chunk ± 1, and
            // len+1 exercises the past-the-end rejection.
            let n = seek_seed % (instrs.len() + 2);
            let mut reader =
                TraceReader::open_indexed(std::io::Cursor::new(&bytes)).unwrap();
            if n <= instrs.len() {
                reader.seek_to_record(n as u64).unwrap();
                let tail: Vec<_> = reader.by_ref().collect::<Result<_, _>>().unwrap();
                prop_assert_eq!(&tail, &instrs[n..]);
            } else {
                prop_assert_eq!(
                    reader.seek_to_record(n as u64).err(),
                    Some(TraceDecodeError::SeekPastEnd {
                        requested: n as u64,
                        total: instrs.len() as u64,
                    })
                );
            }
        }

        /// Same contract over v1, where seeking is a linear re-decode.
        #[test]
        fn v1_seek_then_stream_equals_tail(
            instrs in proptest::collection::vec(instr_strategy(), 0..200),
            seek_seed in 0usize..4096,
        ) {
            let bytes = crate::seek_tests::encode_v1("v1p", &instrs);
            let n = seek_seed % (instrs.len() + 2);
            let mut reader = TraceReader::open(std::io::Cursor::new(&bytes)).unwrap();
            if n <= instrs.len() {
                reader.seek_to_record(n as u64).unwrap();
                let tail: Vec<_> = reader.by_ref().collect::<Result<_, _>>().unwrap();
                prop_assert_eq!(&tail, &instrs[n..]);
            } else {
                prop_assert_eq!(
                    reader.seek_to_record(n as u64).err(),
                    Some(TraceDecodeError::SeekPastEnd {
                        requested: n as u64,
                        total: instrs.len() as u64,
                    })
                );
            }
        }
    }
}
