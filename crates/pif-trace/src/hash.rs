//! Content hashing for instruction streams.
//!
//! A trace's *content hash* is an FNV-1a 64 digest over a canonical
//! per-record byte encoding, independent of the container that carried
//! the records: the same instruction sequence hashes identically whether
//! it came from a v1 file, a v2 chunked file, an in-memory slice, or a
//! workload generator stream. `pif-lab`'s result cache uses it as the
//! trace half of its `(trace hash, config fingerprint)` key, and
//! `tracectl hash` exposes it for file identity checks.
//!
//! The canonical encoding is *not* the on-disk trace format (which is
//! versioned, chunked, and delta-compressed); it is a fixed-width,
//! byte-order-defined projection of [`RetiredInstr`] chosen so that any
//! two streams with equal record sequences produce equal bytes:
//!
//! ```text
//! pc: u64 le | trap_level: u8 | branch tag: u8 | taken: u8
//!            | taken_target: u64 le | fall_through: u64 le
//! ```
//!
//! Non-branch records encode tag `0` with the three branch fields zeroed;
//! branch kinds are tagged 1–5 in declaration order. A length suffix
//! (record count) is folded in by [`TraceHasher::finish`] so a stream is
//! never a hash-prefix of a longer one.

use pif_types::{BranchKind, RetiredInstr};

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds `bytes` into an FNV-1a 64 accumulator.
#[inline]
pub fn fnv1a_64(mut acc: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        acc ^= u64::from(b);
        acc = acc.wrapping_mul(FNV_PRIME);
    }
    acc
}

/// One-shot FNV-1a 64 of a byte string, from the standard offset basis.
#[inline]
pub fn fnv1a_64_once(bytes: &[u8]) -> u64 {
    fnv1a_64(FNV_OFFSET, bytes)
}

/// Streaming content hasher over retired-instruction records.
///
/// Feed records in retirement order with [`update`](Self::update) (any
/// source: a decoder, a generator, a slice walk), then take the digest
/// with [`finish`](Self::finish). Equal record sequences — regardless of
/// container format or chunking — produce equal digests.
#[derive(Debug, Clone)]
pub struct TraceHasher {
    acc: u64,
    records: u64,
}

impl Default for TraceHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceHasher {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        TraceHasher {
            acc: FNV_OFFSET,
            records: 0,
        }
    }

    /// Folds one record into the digest.
    #[inline]
    pub fn update(&mut self, instr: &RetiredInstr) {
        let mut buf = [0u8; 8 + 1 + 1 + 1 + 8 + 8];
        buf[..8].copy_from_slice(&instr.pc.raw().to_le_bytes());
        buf[8] = instr.trap_level as u8;
        if let Some(b) = &instr.branch {
            buf[9] = match b.kind {
                BranchKind::Conditional => 1,
                BranchKind::Direct => 2,
                BranchKind::Call => 3,
                BranchKind::IndirectCall => 4,
                BranchKind::Return => 5,
            };
            buf[10] = u8::from(b.taken);
            buf[11..19].copy_from_slice(&b.taken_target.raw().to_le_bytes());
            buf[19..27].copy_from_slice(&b.fall_through.raw().to_le_bytes());
        }
        self.acc = fnv1a_64(self.acc, &buf);
        self.records += 1;
    }

    /// Records hashed so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The digest: the record bytes folded with a record-count suffix.
    pub fn finish(&self) -> u64 {
        fnv1a_64(self.acc, &self.records.to_le_bytes())
    }
}

/// Hashes a complete instruction stream.
///
/// Drains `source`; pass `&mut iter` to keep ownership. For an on-disk
/// trace use [`crate::TraceReader::content_hash`], which also surfaces
/// decode errors.
pub fn content_hash<I: IntoIterator<Item = RetiredInstr>>(source: I) -> u64 {
    let mut h = TraceHasher::new();
    for instr in source {
        h.update(&instr);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pif_types::{Address, BranchInfo, TrapLevel};

    fn simple(pc: u64) -> RetiredInstr {
        RetiredInstr::simple(Address::new(pc), TrapLevel::Tl0)
    }

    fn branch(pc: u64, kind: BranchKind, taken: bool) -> RetiredInstr {
        RetiredInstr {
            pc: Address::new(pc),
            trap_level: TrapLevel::Tl0,
            branch: Some(BranchInfo {
                kind,
                taken,
                taken_target: Address::new(pc + 64),
                fall_through: Address::new(pc + 4),
            }),
        }
    }

    #[test]
    fn equal_streams_hash_equal() {
        let trace: Vec<_> = (0..100).map(|i| simple(i * 4)).collect();
        assert_eq!(
            content_hash(trace.iter().copied()),
            content_hash(trace.iter().copied())
        );
    }

    #[test]
    fn any_field_change_changes_hash() {
        let base = [simple(0), branch(4, BranchKind::Conditional, true)];
        let h0 = content_hash(base.iter().copied());
        let variants = [
            vec![simple(4), branch(4, BranchKind::Conditional, true)],
            vec![
                RetiredInstr::simple(Address::new(0), TrapLevel::Tl1),
                branch(4, BranchKind::Conditional, true),
            ],
            vec![simple(0), branch(4, BranchKind::Conditional, false)],
            vec![simple(0), branch(4, BranchKind::Direct, true)],
            vec![simple(0), simple(4)],
        ];
        for (i, v) in variants.iter().enumerate() {
            assert_ne!(h0, content_hash(v.iter().copied()), "variant {i}");
        }
    }

    #[test]
    fn prefix_is_not_hash_equal() {
        let trace: Vec<_> = (0..10).map(|i| simple(i * 4)).collect();
        let full = content_hash(trace.iter().copied());
        let prefix = content_hash(trace[..9].iter().copied());
        assert_ne!(full, prefix);
        // The length suffix also separates the empty stream from any
        // other stream whose folded bytes happen to collide.
        assert_ne!(content_hash(std::iter::empty()), full);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let trace: Vec<_> = (0..50)
            .map(|i| branch(i * 4, BranchKind::Call, i % 2 == 0))
            .collect();
        let mut h = TraceHasher::new();
        for instr in &trace {
            h.update(instr);
        }
        assert_eq!(h.records(), 50);
        assert_eq!(h.finish(), content_hash(trace.iter().copied()));
    }
}
