//! Dev helper: prints the golden-fixture byte layouts used by
//! `tests/trace_subsystem.rs`. Run: `cargo run -p pif-trace --example dump_golden`

use pif_trace::encode_v2;
use pif_types::{Address, BranchInfo, BranchKind, RetiredInstr, TrapLevel};

fn main() {
    let instrs = vec![
        RetiredInstr::simple(Address::new(0x40_0000), TrapLevel::Tl0),
        RetiredInstr::branch(
            Address::new(0x40_0004),
            TrapLevel::Tl0,
            BranchInfo {
                kind: BranchKind::Call,
                taken: true,
                taken_target: Address::new(0x40_1000),
                fall_through: Address::new(0x40_0008),
            },
        ),
        RetiredInstr::simple(Address::new(0x40_1000), TrapLevel::Tl1),
    ];
    let v2 = encode_v2("golden", &instrs);
    for (i, b) in v2.iter().enumerate() {
        print!("0x{b:02x}, ");
        if i % 12 == 11 {
            println!();
        }
    }
    println!();
}
