//! Differential proptests: the batched chunk decode behind
//! [`TraceReader`] must equal a record-at-a-time reference decode built
//! directly on `decode_record` — over arbitrary chunk contents, the v1
//! fallback, and truncated files.
//!
//! The reference walks the container byte-for-byte per the crate-level
//! format spec and decodes each record individually, i.e. exactly what
//! the reader did before chunks were batch-decoded into a flat scratch.

use pif_trace::codec::{decode_chunk, decode_record};
use pif_trace::{TraceDecodeError, TraceReader, TraceWriter, MAGIC, VERSION_V1};
use pif_types::{Address, BranchInfo, BranchKind, RetiredInstr, TrapLevel};
use proptest::prelude::*;

fn kind_of(k: u8) -> BranchKind {
    match k {
        0 => BranchKind::Conditional,
        1 => BranchKind::Direct,
        2 => BranchKind::Call,
        3 => BranchKind::IndirectCall,
        _ => BranchKind::Return,
    }
}

fn instr_strategy() -> impl Strategy<Value = RetiredInstr> {
    (
        any::<u64>(),
        0usize..TrapLevel::COUNT,
        proptest::option::of((0u8..5, any::<bool>(), any::<u64>(), any::<u64>())),
    )
        .prop_map(|(pc, tl, branch)| RetiredInstr {
            pc: Address::new(pc),
            trap_level: TrapLevel::from_index(tl),
            branch: branch.map(|(k, taken, target, fall)| BranchInfo {
                kind: kind_of(k),
                taken,
                taken_target: Address::new(target),
                fall_through: Address::new(fall),
            }),
        })
}

fn encode(instrs: &[RetiredInstr], chunk: u32) -> Vec<u8> {
    let mut w = TraceWriter::with_chunk_records(Vec::new(), "diff", chunk).unwrap();
    w.extend(instrs.iter().copied()).unwrap();
    w.finish().unwrap()
}

/// Hand-rolled v1 encoder, layout from the crate-level format spec (the
/// production v1 writer lives in `pif_workloads`, outside this crate).
fn encode_v1(instrs: &[RetiredInstr]) -> Vec<u8> {
    let mut b = Vec::new();
    b.extend_from_slice(MAGIC);
    b.extend_from_slice(&VERSION_V1.to_le_bytes());
    b.extend_from_slice(&2u32.to_le_bytes());
    b.extend_from_slice(b"v1");
    b.extend_from_slice(&(instrs.len() as u64).to_le_bytes());
    for i in instrs {
        b.extend_from_slice(&i.pc.raw().to_le_bytes());
        b.push(i.trap_level.index() as u8);
        match i.branch {
            None => b.push(0),
            Some(info) => {
                b.push(1);
                b.push(match info.kind {
                    BranchKind::Conditional => 0,
                    BranchKind::Direct => 1,
                    BranchKind::Call => 2,
                    BranchKind::IndirectCall => 3,
                    BranchKind::Return => 4,
                });
                b.push(info.taken as u8);
                b.extend_from_slice(&info.taken_target.raw().to_le_bytes());
                b.extend_from_slice(&info.fall_through.raw().to_le_bytes());
            }
        }
    }
    b
}

fn read_u32(data: &mut &[u8]) -> Result<u32, ()> {
    let (head, rest) = data.split_at_checked(4).ok_or(())?;
    *data = rest;
    Ok(u32::from_le_bytes(head.try_into().unwrap()))
}

/// Record-at-a-time reference decode of a v2 file: walks the container
/// structure by hand and decodes every record individually with
/// `decode_record`. Returns the records decoded before the first error
/// and whether the file decoded cleanly to a verified terminator.
fn reference_decode_v2(bytes: &[u8]) -> (Vec<RetiredInstr>, bool) {
    let mut out = Vec::new();
    let mut data = bytes;
    // Container header: magic, version, name.
    let Some((magic, rest)) = data.split_at_checked(4) else {
        return (out, false);
    };
    assert_eq!(magic, MAGIC);
    data = rest;
    let Ok(version) = read_u32(&mut data) else {
        return (out, false);
    };
    assert_eq!(version, 2);
    let Ok(name_len) = read_u32(&mut data) else {
        return (out, false);
    };
    let Some((_, rest)) = data.split_at_checked(name_len as usize) else {
        return (out, false);
    };
    data = rest;
    loop {
        let Ok(records) = read_u32(&mut data) else {
            return (out, false);
        };
        let Ok(payload_len) = read_u32(&mut data) else {
            return (out, false);
        };
        if records == 0 {
            // Terminator: verify the declared total.
            let Some((total, _)) = data.split_at_checked(8) else {
                return (out, false);
            };
            let clean = payload_len == 8
                && u64::from_le_bytes(total.try_into().unwrap()) == out.len() as u64;
            return (out, clean);
        }
        let Some((mut payload, rest)) = data.split_at_checked(payload_len as usize) else {
            return (out, false);
        };
        data = rest;
        let mut prev_pc = 0u64;
        for _ in 0..records {
            match decode_record(&mut payload, &mut prev_pc) {
                Ok(instr) => out.push(instr),
                Err(_) => return (out, false),
            }
        }
        if !payload.is_empty() {
            return (out, false);
        }
    }
}

/// Streams a reader to the end, returning the yielded prefix and the
/// error that stopped it, if any.
fn stream(bytes: &[u8]) -> (Vec<RetiredInstr>, Option<TraceDecodeError>) {
    let mut reader = match TraceReader::open(bytes) {
        Ok(r) => r,
        Err(e) => return (Vec::new(), Some(e)),
    };
    let mut out = Vec::new();
    let mut err = None;
    for r in reader.by_ref() {
        match r {
            Ok(i) => out.push(i),
            Err(e) => err = Some(e),
        }
    }
    (out, err)
}

proptest! {
    /// Valid v2 files: the batched streaming decode equals the
    /// record-at-a-time reference equals the original records.
    #[test]
    fn batched_equals_record_at_a_time_on_valid_files(
        instrs in proptest::collection::vec(instr_strategy(), 0..300),
        chunk in 1u32..96,
    ) {
        let bytes = encode(&instrs, chunk);
        let (reference, clean) = reference_decode_v2(&bytes);
        prop_assert!(clean);
        prop_assert_eq!(&reference, &instrs);
        let (batched, err) = stream(&bytes);
        prop_assert!(err.is_none(), "clean file decodes cleanly: {err:?}");
        prop_assert_eq!(&batched, &reference);
    }

    /// The batch primitive itself equals a `decode_record` loop over one
    /// chunk payload (shared `decode_chunk` is also what `seek_to_record`
    /// uses, so this pins the seek path too).
    #[test]
    fn decode_chunk_equals_decode_record_loop(
        instrs in proptest::collection::vec(instr_strategy(), 0..200),
    ) {
        let mut payload = Vec::new();
        let mut prev = 0u64;
        for i in &instrs {
            pif_trace::codec::encode_record(&mut payload, i, &mut prev);
        }
        let mut batched = Vec::new();
        decode_chunk(&payload, instrs.len() as u32, &mut batched).unwrap();
        prop_assert_eq!(&batched, &instrs);
        // A short count must flag the leftover bytes, like the reader's
        // old per-record bookkeeping did.
        if !instrs.is_empty() {
            let short = decode_chunk(&payload, instrs.len() as u32 - 1, &mut batched);
            prop_assert_eq!(
                short,
                Err(TraceDecodeError::Corrupt("trailing chunk bytes"))
            );
        }
    }

    /// Truncated v2 files: both paths detect the damage, and the batched
    /// reader's yielded prefix is a (chunk-aligned) prefix of the
    /// reference's — batching may withhold records of the damaged chunk,
    /// but can never invent or reorder them.
    #[test]
    fn truncation_agrees_with_the_reference(
        instrs in proptest::collection::vec(instr_strategy(), 1..150),
        chunk in 1u32..48,
        cut_seed in 0usize..4096,
    ) {
        let bytes = encode(&instrs, chunk);
        let cut = cut_seed % bytes.len();
        let (reference, clean) = reference_decode_v2(&bytes[..cut]);
        prop_assert!(!clean, "a strict prefix never verifies its terminator");
        let (batched, err) = stream(&bytes[..cut]);
        prop_assert!(err.is_some(), "truncation at {cut} must surface an error");
        prop_assert!(batched.len() <= reference.len());
        prop_assert_eq!(&batched[..], &reference[..batched.len()]);
        prop_assert_eq!(&batched[..], &instrs[..batched.len()]);
    }

    /// v1 fallback: unchunked fixed-width records take the
    /// record-at-a-time path and still decode exactly.
    #[test]
    fn v1_fallback_decodes_exactly(
        instrs in proptest::collection::vec(instr_strategy(), 0..150),
        cut_seed in 0usize..4096,
    ) {
        let bytes = encode_v1(&instrs);
        let (full, err) = stream(&bytes);
        prop_assert!(err.is_none());
        prop_assert_eq!(&full, &instrs);
        // Truncated v1 yields a prefix plus an error (unless the cut
        // only removed zero records, impossible here: v1 has no
        // terminator, the header count is the contract).
        let cut = cut_seed % bytes.len();
        let (prefix, err) = stream(&bytes[..cut]);
        prop_assert!(err.is_some() || (cut == 0 && instrs.is_empty()));
        prop_assert!(prefix.len() <= instrs.len());
        prop_assert_eq!(&prefix[..], &instrs[..prefix.len()]);
    }
}
