//! Fault injection through the trace codec. Compiled only with
//! `--features fail-inject`; CI's chaos shard runs it.

#![cfg(feature = "fail-inject")]

use std::sync::Mutex;

use pif_fail::{FailAction, FailPlan, SiteRule};
use pif_trace::{TraceErrorKind, TraceReader, TraceWriter};
use pif_types::{Address, RetiredInstr, TrapLevel};

/// The active plan is process-global; serialize the tests.
static SERIAL: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    match SERIAL.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

fn instr(pc: u64) -> RetiredInstr {
    RetiredInstr::simple(Address::new(pc), TrapLevel::Tl0)
}

fn sample_trace(records: u64) -> Vec<u8> {
    let mut w = TraceWriter::with_chunk_records(Vec::new(), "fp", 8).unwrap();
    for i in 0..records {
        w.push(&instr(0x4000 + i * 4)).unwrap();
    }
    w.finish().unwrap()
}

#[test]
fn injected_write_fault_surfaces_as_io_error() {
    let _serial = lock();
    pif_fail::install(
        &FailPlan::new(11).site("trace.write.chunk", SiteRule::always(FailAction::Error)),
    );
    let mut w = TraceWriter::with_chunk_records(Vec::new(), "fp", 4).unwrap();
    let mut result = Ok(());
    for i in 0..8u64 {
        result = w.push(&instr(0x4000 + i * 4));
        if result.is_err() {
            break;
        }
    }
    pif_fail::clear();
    let err = result.expect_err("chunk flush should have failed");
    assert!(err.to_string().contains("trace.write.chunk"), "{err}");
}

#[test]
fn injected_finish_fault_surfaces_as_io_error() {
    let _serial = lock();
    pif_fail::install(
        &FailPlan::new(11).site("trace.write.finish", SiteRule::always(FailAction::Error)),
    );
    let w = TraceWriter::new(Vec::new(), "fp").unwrap();
    let err = w.finish().expect_err("terminator write should have failed");
    pif_fail::clear();
    assert!(err.to_string().contains("trace.write.finish"), "{err}");
}

#[test]
fn injected_read_fault_is_a_typed_decode_error_and_fuses() {
    let _serial = lock();
    let bytes = sample_trace(32);
    pif_fail::install(
        &FailPlan::new(11).site("trace.read.chunk", SiteRule::always(FailAction::Error)),
    );
    let mut reader = TraceReader::open(bytes.as_slice()).unwrap();
    let first = reader.next().expect("one result");
    let err = first.expect_err("first chunk header read should fail");
    pif_fail::clear();
    assert_eq!(err.kind(), TraceErrorKind::Io);
    assert!(err.to_string().contains("trace.read.chunk"), "{err}");
    assert!(reader.next().is_none(), "reader must fuse after the error");
}

#[test]
fn probabilistic_read_faults_never_corrupt_decoded_records() {
    let _serial = lock();
    let bytes = sample_trace(64);
    let clean: Vec<RetiredInstr> = TraceReader::open(bytes.as_slice())
        .unwrap()
        .collect::<Result<_, _>>()
        .unwrap();
    pif_fail::install(&FailPlan::new(42).site(
        "trace.read.chunk",
        SiteRule {
            action: FailAction::Error,
            probability: 0.5,
            max_fires: None,
        },
    ));
    // Whatever prefix decodes before the injected fault must match the
    // clean decode exactly — faults fail closed, never corrupt.
    let mut saw_fault = false;
    for _ in 0..8 {
        let mut reader = TraceReader::open(bytes.as_slice()).unwrap();
        let mut decoded = Vec::new();
        for result in reader.by_ref() {
            match result {
                Ok(i) => decoded.push(i),
                Err(e) => {
                    assert_eq!(e.kind(), TraceErrorKind::Io);
                    saw_fault = true;
                }
            }
        }
        assert_eq!(&clean[..decoded.len()], decoded.as_slice());
    }
    let stats = pif_fail::stats();
    pif_fail::clear();
    assert!(saw_fault, "p=0.5 over 8 opens should fire at least once");
    assert!(stats.iter().any(|s| s.fires > 0));
}
