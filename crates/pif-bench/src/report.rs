//! The `pif-bench-engine/v1` throughput report: rendering, validation,
//! and the `--smoke` floor verdict.
//!
//! Extracted from the `perfbench` binary so the verdict logic is unit
//! tested. The crucial ordering contract: **the floor verdict is
//! computed before any artifact is written**, and the verdict itself is
//! embedded in the JSON (`"smoke_passed"`), so a failing smoke run can
//! never leave a passing-looking report on disk.

/// Committed throughput floor for the `--smoke` regression gate, in
/// retired instructions per second of the no-prefetch configuration.
/// Chosen far below the development machine's ~70 Minstr/s so that slow
/// CI runners pass comfortably while a hot-loop regression (which shows
/// up as a multiple, not a percentage) still trips it.
pub const SMOKE_FLOOR_IPS: f64 = 4.0e6;

/// Pre-refactor throughput on the development machine (PR 2 tree, commit
/// `7b07f0d`; 2M-instruction OLTP-DB2 trace), quoted in the report so the
/// speedup of the flat-cache/zero-allocation refactor stays on record.
pub const PRIOR_NONE_IPS: f64 = 29.2e6;
/// Pre-refactor PIF-configuration throughput (see [`PRIOR_NONE_IPS`]).
pub const PRIOR_PIF_IPS: f64 = 15.6e6;

/// One measured (workload, prefetcher) throughput point.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Workload name.
    pub workload: String,
    /// Prefetcher label.
    pub prefetcher: &'static str,
    /// Retired instructions in the measured run.
    pub instructions: u64,
    /// Best-of-N wall-clock seconds.
    pub elapsed_s: f64,
    /// Useful IPC of the run.
    pub uipc: f64,
}

impl RunResult {
    /// Retired instructions per wall-clock second.
    pub fn ips(&self) -> f64 {
        self.instructions as f64 / self.elapsed_s
    }
}

/// The effective smoke gate: 30% below the committed floor, absorbing
/// CI-runner noise.
pub fn smoke_threshold_ips() -> f64 {
    SMOKE_FLOOR_IPS * 0.7
}

/// The smoke verdict for a measured no-prefetch throughput.
pub fn smoke_passed(none_ips: f64) -> bool {
    none_ips >= smoke_threshold_ips()
}

/// The minimum no-prefetch throughput across results (the gated value).
pub fn none_ips(results: &[RunResult]) -> f64 {
    results
        .iter()
        .filter(|r| r.prefetcher == "None")
        .map(RunResult::ips)
        .fold(f64::MAX, f64::min)
}

use pif_lab::json::escape as json_escape;

/// Renders the `pif-bench-engine/v1` JSON document.
///
/// `smoke_passed` is the floor verdict for smoke runs (`None` renders as
/// JSON `null` for full runs, where no gate applies). Callers must
/// compute the verdict **before** rendering/writing so the artifact is
/// honest about failure. `probe_overhead_pct` is the measured wall-clock
/// cost of running with a live `EngineProbe` vs the `NoProbe` default,
/// and `failpoint_overhead_pct` the cost of a `fail_point!`-bearing hot
/// loop vs its plain twin — near zero in default builds, where the macro
/// erases at compile time (either renders as `null` when the pair was
/// not measured).
pub fn render_json(
    results: &[RunResult],
    instructions: usize,
    smoke: bool,
    smoke_passed: Option<bool>,
    probe_overhead_pct: Option<f64>,
    failpoint_overhead_pct: Option<f64>,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"pif-bench-engine/v1\",\n");
    s.push_str(&format!("  \"smoke\": {smoke},\n"));
    s.push_str(&format!(
        "  \"smoke_passed\": {},\n",
        match smoke_passed {
            Some(v) => v.to_string(),
            None => "null".to_string(),
        }
    ));
    s.push_str(&format!(
        "  \"probe_overhead_pct\": {},\n",
        match probe_overhead_pct {
            Some(v) => format!("{v:.2}"),
            None => "null".to_string(),
        }
    ));
    s.push_str(&format!(
        "  \"failpoint_overhead_pct\": {},\n",
        match failpoint_overhead_pct {
            Some(v) => format!("{v:.2}"),
            None => "null".to_string(),
        }
    ));
    s.push_str(&format!("  \"instructions_per_run\": {instructions},\n"));
    s.push_str(&format!(
        "  \"smoke_floor_instrs_per_sec\": {SMOKE_FLOOR_IPS:.1},\n"
    ));
    s.push_str(
        "  \"prior\": {\n    \"note\": \"pre-refactor throughput (heap-allocating hot loop, \
         pointer-chasing cache layout) on the same development machine\",\n",
    );
    s.push_str(&format!(
        "    \"none_instrs_per_sec\": {PRIOR_NONE_IPS:.1},\n    \"pif_instrs_per_sec\": {PRIOR_PIF_IPS:.1}\n  }},\n"
    ));
    s.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"workload\": \"{}\", \"prefetcher\": \"{}\", \"instructions\": {}, \
             \"elapsed_s\": {:.6}, \"instrs_per_sec\": {:.1}, \"uipc\": {:.4}}}{}\n",
            json_escape(&r.workload),
            json_escape(r.prefetcher),
            r.instructions,
            r.elapsed_s,
            r.ips(),
            r.uipc,
            if i + 1 == results.len() { "" } else { "," },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Validates that `s` is one well-formed JSON document (via the pif-lab
/// parser, which rejects anything malformed with a byte offset).
///
/// # Errors
///
/// Returns the parser's message on malformed input.
pub fn validate_json(s: &str) -> Result<(), String> {
    pif_lab::json::Json::parse(s).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pif_lab::json::Json;

    fn sample(elapsed_s: f64) -> Vec<RunResult> {
        vec![
            RunResult {
                workload: "OLTP-DB2".into(),
                prefetcher: "None",
                instructions: 300_000,
                elapsed_s,
                uipc: 1.5,
            },
            RunResult {
                workload: "OLTP-DB2".into(),
                prefetcher: "PIF",
                instructions: 300_000,
                elapsed_s: elapsed_s * 2.0,
                uipc: 2.0,
            },
        ]
    }

    #[test]
    fn verdict_trips_only_below_the_noisy_floor() {
        assert!(smoke_passed(SMOKE_FLOOR_IPS));
        assert!(smoke_passed(smoke_threshold_ips()));
        assert!(!smoke_passed(smoke_threshold_ips() * 0.99));
    }

    #[test]
    fn none_ips_picks_the_gated_configuration() {
        let results = sample(0.01); // None: 30 Minstr/s
        assert!((none_ips(&results) - 30.0e6).abs() < 1.0);
        assert!(smoke_passed(none_ips(&results)));
        let slow = sample(1.0); // None: 0.3 Minstr/s — regression
        assert!(!smoke_passed(none_ips(&slow)));
    }

    #[test]
    fn failing_smoke_run_renders_an_honest_artifact() {
        let slow = sample(1.0);
        let verdict = smoke_passed(none_ips(&slow));
        assert!(!verdict);
        let json = render_json(&slow, 300_000, true, Some(verdict), None, None);
        validate_json(&json).expect("artifact parses");
        let doc = Json::parse(&json).unwrap();
        assert_eq!(doc.get("smoke_passed").and_then(Json::as_bool), Some(false));
        assert_eq!(doc.get("smoke").and_then(Json::as_bool), Some(true));
        assert_eq!(doc.get("probe_overhead_pct"), Some(&Json::Null));
        assert_eq!(doc.get("failpoint_overhead_pct"), Some(&Json::Null));
    }

    #[test]
    fn full_run_has_null_verdict() {
        let json = render_json(&sample(0.01), 2_000_000, false, None, None, None);
        validate_json(&json).expect("artifact parses");
        let doc = Json::parse(&json).unwrap();
        assert_eq!(doc.get("smoke_passed"), Some(&Json::Null));
        assert_eq!(
            doc.get("results").and_then(Json::as_arr).map(<[_]>::len),
            Some(2)
        );
    }

    #[test]
    fn probe_overhead_renders_as_a_number_when_measured() {
        let json = render_json(&sample(0.01), 2_000_000, false, None, Some(1.234), None);
        validate_json(&json).expect("artifact parses");
        let doc = Json::parse(&json).unwrap();
        let pct = doc
            .get("probe_overhead_pct")
            .and_then(Json::as_f64)
            .expect("probe_overhead_pct is a number");
        assert!((pct - 1.23).abs() < 1e-9, "rounded to 2 decimals: {pct}");
        assert_eq!(doc.get("failpoint_overhead_pct"), Some(&Json::Null));
    }

    #[test]
    fn failpoint_overhead_renders_as_a_number_when_measured() {
        // Negative residuals (the failpointed loop winning a coin flip on
        // a quiet machine) must render as plain numbers, not vanish.
        let json = render_json(&sample(0.01), 2_000_000, false, None, None, Some(-0.057));
        validate_json(&json).expect("artifact parses");
        let doc = Json::parse(&json).unwrap();
        let pct = doc
            .get("failpoint_overhead_pct")
            .and_then(Json::as_f64)
            .expect("failpoint_overhead_pct is a number");
        assert!((pct - -0.06).abs() < 1e-9, "rounded to 2 decimals: {pct}");
    }

    #[test]
    fn validate_rejects_garbage() {
        assert!(validate_json("{\"a\": }").is_err());
        assert!(validate_json("{} trailing").is_err());
    }
}
