//! The `pif-bench-engine/v2` throughput report: rendering, validation,
//! the `--smoke` floor verdict, and the cross-run **trend gate**.
//!
//! Extracted from the `perfbench` binary so the verdict logic is unit
//! tested. The crucial ordering contract: **the floor verdict is
//! computed before any artifact is written**, and the verdict itself is
//! embedded in the JSON (`"smoke_passed"`), so a failing smoke run can
//! never leave a passing-looking report on disk.
//!
//! # Schema v2
//!
//! v2 makes two changes over v1:
//!
//! * `"smoke_passed"` is **absent** on full (non-smoke) runs instead of
//!   `null` — present iff a verdict was actually computed, so consumers
//!   can distinguish "gate not applicable" from "gate forgot to run";
//! * an `"aggregate"` array records parallel sampled-execution
//!   throughput rows (`aggregate_instrs_per_sec` = instructions the
//!   whole fan-out retired per wall-clock second at a given thread
//!   count), alongside the serial per-engine `"results"` rows.
//!
//! # The trend gate
//!
//! [`compare_trend`] compares a freshly measured report against the
//! committed one **without trusting absolute numbers**: CI runners and
//! dev machines differ by integer factors. It first estimates a
//! machine-calibration ratio (the median of fresh/committed across
//! matching rows — robust to a few genuine regressions), then flags any
//! row whose own ratio falls more than [`TREND_TOLERANCE`] below that
//! calibration. A uniformly slower machine moves every ratio equally and
//! passes; a hot-loop regression moves the affected rows against the
//! rest and trips. The committed absolute smoke floor still applies to
//! the fresh no-prefetch rows as a backstop (the same floor logic as the
//! smoke gate, with the same 30% noise allowance).
//!
//! ## Host portability of aggregate rows
//!
//! Serial `results` rows scale with single-core speed, which the
//! calibration absorbs. Parallel `aggregate` rows do not: an 8-thread
//! fan-out on a 2-core host is bounded by core count, not code quality,
//! and would trip the gate on any small CI runner. The v2 schema
//! therefore records `host_cores` (the measuring machine's available
//! parallelism), and [`compare_trend`] skips — rather than compares —
//! aggregate rows whose thread count exceeds the fresh host's cores, and
//! all multi-threaded aggregate rows whenever the fresh host's core
//! count differs from the one the baseline recorded (their speedup
//! ratios are not comparable across machine shapes). Skips are reported
//! in [`TrendReport::skipped`], never silently. Baselines written before
//! `host_cores` existed lack the field and keep the old
//! compare-everything behavior.

/// Committed throughput floor for the `--smoke` regression gate, in
/// retired instructions per second of the no-prefetch configuration.
/// Chosen far below the development machine's ~70 Minstr/s so that slow
/// CI runners pass comfortably while a hot-loop regression (which shows
/// up as a multiple, not a percentage) still trips it.
pub const SMOKE_FLOOR_IPS: f64 = 4.0e6;

/// Pre-refactor throughput on the development machine (PR 2 tree, commit
/// `7b07f0d`; 2M-instruction OLTP-DB2 trace), quoted in the report so the
/// speedup of the flat-cache/zero-allocation refactor stays on record.
pub const PRIOR_NONE_IPS: f64 = 29.2e6;
/// Pre-refactor PIF-configuration throughput (see [`PRIOR_NONE_IPS`]).
pub const PRIOR_PIF_IPS: f64 = 15.6e6;

/// Fractional slack a row gets below the machine-calibrated expectation
/// before the trend gate trips — the same 30% the smoke floor allows for
/// runner noise.
pub const TREND_TOLERANCE: f64 = 0.30;

/// One measured (workload, prefetcher) throughput point.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Workload name.
    pub workload: String,
    /// Prefetcher label.
    pub prefetcher: &'static str,
    /// Retired instructions in the measured run.
    pub instructions: u64,
    /// Best-of-N wall-clock seconds.
    pub elapsed_s: f64,
    /// Useful IPC of the run.
    pub uipc: f64,
}

impl RunResult {
    /// Retired instructions per wall-clock second.
    pub fn ips(&self) -> f64 {
        self.instructions as f64 / self.elapsed_s
    }
}

/// One parallel sampled-execution throughput point: a whole sampled run
/// (every window, warmup included) fanned out at `threads` workers.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateResult {
    /// Workload name.
    pub workload: String,
    /// Prefetcher label.
    pub prefetcher: &'static str,
    /// Worker threads in the fan-out.
    pub threads: usize,
    /// Sample windows executed.
    pub windows: usize,
    /// Total instructions simulated across all windows (warmup +
    /// measurement).
    pub instructions: u64,
    /// Wall-clock seconds for the whole fan-out.
    pub elapsed_s: f64,
    /// Wall-clock seconds of the serial driver over the same plan, for
    /// the recorded speedup.
    pub serial_elapsed_s: f64,
}

impl AggregateResult {
    /// Aggregate simulated instructions per wall-clock second across the
    /// fan-out.
    pub fn aggregate_ips(&self) -> f64 {
        self.instructions as f64 / self.elapsed_s
    }

    /// Wall-clock speedup of the fan-out over the serial driver.
    pub fn parallel_speedup(&self) -> f64 {
        self.serial_elapsed_s / self.elapsed_s
    }
}

/// The effective smoke gate: 30% below the committed floor, absorbing
/// CI-runner noise.
pub fn smoke_threshold_ips() -> f64 {
    SMOKE_FLOOR_IPS * 0.7
}

/// The measuring host's available parallelism, recorded in the report as
/// `host_cores` so a trend comparison can tell machine-shape differences
/// from regressions.
pub fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// The smoke verdict for a measured no-prefetch throughput.
pub fn smoke_passed(none_ips: f64) -> bool {
    none_ips >= smoke_threshold_ips()
}

/// The minimum no-prefetch throughput across results (the gated value).
pub fn none_ips(results: &[RunResult]) -> f64 {
    results
        .iter()
        .filter(|r| r.prefetcher == "None")
        .map(RunResult::ips)
        .fold(f64::MAX, f64::min)
}

use pif_lab::json::{escape as json_escape, Json};

/// Renders the `pif-bench-engine/v2` JSON document.
///
/// `smoke_passed` is the floor verdict for smoke runs; `None` (full
/// runs, where no gate applies) **omits the key** rather than rendering
/// `null`, so its presence always means a verdict was computed. Callers
/// must compute the verdict **before** rendering/writing so the artifact
/// is honest about failure. `probe_overhead_pct` is the measured
/// wall-clock cost of running with a live `EngineProbe` vs the `NoProbe`
/// default, and `failpoint_overhead_pct` the cost of a
/// `fail_point!`-bearing hot loop vs its plain twin — near zero in
/// default builds, where the macro erases at compile time (either
/// renders as `null` when the pair was not measured). `aggregates` rows
/// record parallel sampled throughput; the array renders empty when the
/// aggregate mode did not run. `host_cores` is the measuring machine's
/// available parallelism (pass [`host_cores()`]) — the trend gate uses it
/// to keep aggregate rows portable across machine shapes.
#[allow(clippy::too_many_arguments)] // one flat field list, same order as the document
pub fn render_json(
    results: &[RunResult],
    aggregates: &[AggregateResult],
    instructions: usize,
    smoke: bool,
    smoke_passed: Option<bool>,
    probe_overhead_pct: Option<f64>,
    failpoint_overhead_pct: Option<f64>,
    host_cores: usize,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"pif-bench-engine/v2\",\n");
    s.push_str(&format!("  \"smoke\": {smoke},\n"));
    if let Some(v) = smoke_passed {
        s.push_str(&format!("  \"smoke_passed\": {v},\n"));
    }
    s.push_str(&format!(
        "  \"probe_overhead_pct\": {},\n",
        match probe_overhead_pct {
            Some(v) => format!("{v:.2}"),
            None => "null".to_string(),
        }
    ));
    s.push_str(&format!(
        "  \"failpoint_overhead_pct\": {},\n",
        match failpoint_overhead_pct {
            Some(v) => format!("{v:.2}"),
            None => "null".to_string(),
        }
    ));
    s.push_str(&format!("  \"instructions_per_run\": {instructions},\n"));
    s.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    s.push_str(&format!(
        "  \"smoke_floor_instrs_per_sec\": {SMOKE_FLOOR_IPS:.1},\n"
    ));
    s.push_str(
        "  \"prior\": {\n    \"note\": \"pre-refactor throughput (heap-allocating hot loop, \
         pointer-chasing cache layout) on the same development machine\",\n",
    );
    s.push_str(&format!(
        "    \"none_instrs_per_sec\": {PRIOR_NONE_IPS:.1},\n    \"pif_instrs_per_sec\": {PRIOR_PIF_IPS:.1}\n  }},\n"
    ));
    s.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"workload\": \"{}\", \"prefetcher\": \"{}\", \"instructions\": {}, \
             \"elapsed_s\": {:.6}, \"instrs_per_sec\": {:.1}, \"uipc\": {:.4}}}{}\n",
            json_escape(&r.workload),
            json_escape(r.prefetcher),
            r.instructions,
            r.elapsed_s,
            r.ips(),
            r.uipc,
            if i + 1 == results.len() { "" } else { "," },
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"aggregate\": [\n");
    for (i, a) in aggregates.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"workload\": \"{}\", \"prefetcher\": \"{}\", \"threads\": {}, \
             \"windows\": {}, \"instructions\": {}, \"elapsed_s\": {:.6}, \
             \"aggregate_instrs_per_sec\": {:.1}, \"parallel_speedup\": {:.3}}}{}\n",
            json_escape(&a.workload),
            json_escape(a.prefetcher),
            a.threads,
            a.windows,
            a.instructions,
            a.elapsed_s,
            a.aggregate_ips(),
            a.parallel_speedup(),
            if i + 1 == aggregates.len() { "" } else { "," },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Validates that `s` is one well-formed JSON document (via the pif-lab
/// parser, which rejects anything malformed with a byte offset).
///
/// # Errors
///
/// Returns the parser's message on malformed input.
pub fn validate_json(s: &str) -> Result<(), String> {
    Json::parse(s).map(|_| ())
}

/// Structurally validates a parsed engine report: schema name, the
/// absent-or-bool `smoke_passed` contract, and numeric throughput fields
/// on every `results`/`aggregate` row.
///
/// Accepts `pif-bench-engine/v1` documents too (where `smoke_passed:
/// null` was legal and `aggregate` absent), so the trend gate can read a
/// committed baseline written before the v2 bump.
///
/// # Errors
///
/// A message naming the first offending field.
pub fn validate_engine_report(doc: &Json) -> Result<(), String> {
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing schema")?;
    let v1 = match schema {
        "pif-bench-engine/v1" => true,
        "pif-bench-engine/v2" => false,
        other => return Err(format!("unknown schema {other:?}")),
    };
    doc.get("smoke")
        .and_then(Json::as_bool)
        .ok_or("smoke must be a bool")?;
    match doc.get("smoke_passed") {
        None => {}
        Some(Json::Null) if v1 => {}
        Some(v) if v.as_bool().is_some() => {}
        Some(_) => return Err("smoke_passed must be absent or a bool".to_string()),
    }
    doc.get("smoke_floor_instrs_per_sec")
        .and_then(Json::as_f64)
        .ok_or("smoke_floor_instrs_per_sec must be a number")?;
    // Recorded since the aggregate-portability fix; absent on older
    // baselines (v1 and early v2), which is fine.
    if let Some(hc) = doc.get("host_cores") {
        hc.as_f64().ok_or("host_cores must be a number")?;
    }
    let results = doc
        .get("results")
        .and_then(Json::as_arr)
        .ok_or("results must be an array")?;
    for r in results {
        result_key(r)?;
        r.get("instrs_per_sec")
            .and_then(Json::as_f64)
            .ok_or("results row lacks numeric instrs_per_sec")?;
    }
    if let Some(aggs) = doc.get("aggregate") {
        let aggs = aggs.as_arr().ok_or("aggregate must be an array")?;
        for a in aggs {
            aggregate_key(a)?;
            a.get("aggregate_instrs_per_sec")
                .and_then(Json::as_f64)
                .ok_or("aggregate row lacks numeric aggregate_instrs_per_sec")?;
        }
    } else if !v1 {
        return Err("v2 report lacks the aggregate array".to_string());
    }
    Ok(())
}

/// One regression found by [`compare_trend`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrendRegression {
    /// Row identity, e.g. `OLTP-DB2/PIF` or `aggregate OLTP-DB2/PIF@8`.
    pub row: String,
    /// Committed throughput for the row.
    pub committed_ips: f64,
    /// Freshly measured throughput for the row.
    pub fresh_ips: f64,
    /// The calibrated minimum the row had to clear.
    pub required_ips: f64,
}

impl std::fmt::Display for TrendRegression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {:.2} Minstr/s < required {:.2} Minstr/s (committed {:.2})",
            self.row,
            self.fresh_ips / 1e6,
            self.required_ips / 1e6,
            self.committed_ips / 1e6
        )
    }
}

/// One matching row [`compare_trend`] declined to compare, and why —
/// aggregate rows whose thread count the fresh host cannot express, or
/// whose speedup is not comparable across machine shapes.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendSkip {
    /// Row identity, e.g. `aggregate OLTP-DB2/PIF@8`.
    pub row: String,
    /// Human-readable reason for the skip.
    pub reason: String,
}

impl std::fmt::Display for TrendSkip {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.row, self.reason)
    }
}

/// Outcome of a trend comparison: the calibration ratio actually used,
/// any rows that regressed past it, and any rows skipped as
/// host-incomparable.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendReport {
    /// Median fresh/committed throughput ratio over matching rows — the
    /// machine-speed calibration.
    pub calibration: f64,
    /// Matching (committed, fresh) row pairs considered.
    pub rows_compared: usize,
    /// Rows regressing more than [`TREND_TOLERANCE`] below calibration,
    /// or no-prefetch rows falling through the absolute floor.
    pub regressions: Vec<TrendRegression>,
    /// Matching rows excluded from the comparison because the host's
    /// core count makes them incomparable (see the module docs). Never
    /// silent: callers should surface these.
    pub skipped: Vec<TrendSkip>,
}

impl TrendReport {
    /// Whether the gate passes.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

fn result_key(row: &Json) -> Result<String, String> {
    let w = row
        .get("workload")
        .and_then(Json::as_str)
        .ok_or("results row lacks workload")?;
    let p = row
        .get("prefetcher")
        .and_then(Json::as_str)
        .ok_or("results row lacks prefetcher")?;
    Ok(format!("{w}/{p}"))
}

fn aggregate_key(row: &Json) -> Result<String, String> {
    let w = row
        .get("workload")
        .and_then(Json::as_str)
        .ok_or("aggregate row lacks workload")?;
    let p = row
        .get("prefetcher")
        .and_then(Json::as_str)
        .ok_or("aggregate row lacks prefetcher")?;
    let t = row
        .get("threads")
        .and_then(Json::as_f64)
        .ok_or("aggregate row lacks threads")?;
    Ok(format!("aggregate {w}/{p}@{t}"))
}

/// One throughput row extracted for the trend comparison. `threads` is
/// `Some` exactly for `aggregate` rows — the marker the host-portability
/// skip logic keys on.
struct ThroughputRow {
    key: String,
    ips: f64,
    threads: Option<u64>,
}

/// Extracts every throughput row of a report: `results` rows keyed
/// `workload/prefetcher` with `instrs_per_sec`, and `aggregate` rows
/// keyed `aggregate workload/prefetcher@threads` with
/// `aggregate_instrs_per_sec`.
fn throughput_rows(doc: &Json) -> Result<Vec<ThroughputRow>, String> {
    let mut rows = Vec::new();
    for r in doc
        .get("results")
        .and_then(Json::as_arr)
        .ok_or("results must be an array")?
    {
        let ips = r
            .get("instrs_per_sec")
            .and_then(Json::as_f64)
            .ok_or("results row lacks numeric instrs_per_sec")?;
        rows.push(ThroughputRow {
            key: result_key(r)?,
            ips,
            threads: None,
        });
    }
    for a in doc.get("aggregate").and_then(Json::as_arr).unwrap_or(&[]) {
        let ips = a
            .get("aggregate_instrs_per_sec")
            .and_then(Json::as_f64)
            .ok_or("aggregate row lacks numeric aggregate_instrs_per_sec")?;
        let threads = a
            .get("threads")
            .and_then(Json::as_f64)
            .ok_or("aggregate row lacks threads")? as u64;
        rows.push(ThroughputRow {
            key: aggregate_key(a)?,
            ips,
            threads: Some(threads),
        });
    }
    Ok(rows)
}

/// Compares a fresh engine report against the committed baseline and
/// flags throughput regressions, machine-independently (see the module
/// docs for the calibration scheme).
///
/// Rows present in only one report are ignored (new benchmarks appear,
/// old ones retire); the gate needs at least one matching row. Aggregate
/// rows are matched by thread count (it is part of their key), and a
/// matching aggregate row is **skipped** — reported in
/// [`TrendReport::skipped`], excluded from calibration and the
/// regression check — when its thread count exceeds the fresh host's
/// recorded `host_cores`, or when it is multi-threaded and the two
/// reports were measured on hosts with different core counts (parallel
/// speedup does not transfer across machine shapes).
///
/// # Errors
///
/// A message if either document is structurally invalid or no rows
/// match.
pub fn compare_trend(committed: &Json, fresh: &Json) -> Result<TrendReport, String> {
    validate_engine_report(committed).map_err(|e| format!("committed report: {e}"))?;
    validate_engine_report(fresh).map_err(|e| format!("fresh report: {e}"))?;
    let committed_rows = throughput_rows(committed)?;
    let fresh_rows = throughput_rows(fresh)?;
    let committed_cores = committed
        .get("host_cores")
        .and_then(Json::as_f64)
        .map(|v| v as u64);
    let fresh_cores = fresh
        .get("host_cores")
        .and_then(Json::as_f64)
        .map(|v| v as u64);

    let mut pairs: Vec<(String, f64, f64)> = Vec::new();
    let mut skipped = Vec::new();
    for row in &committed_rows {
        let Some(f) = fresh_rows.iter().find(|f| f.key == row.key) else {
            continue;
        };
        if let Some(threads) = row.threads {
            if let Some(cores) = fresh_cores {
                if threads > cores {
                    skipped.push(TrendSkip {
                        row: row.key.clone(),
                        reason: format!(
                            "{threads}-thread fan-out exceeds this host's {cores} cores"
                        ),
                    });
                    continue;
                }
            }
            if let (Some(c), Some(fc)) = (committed_cores, fresh_cores) {
                if c != fc && threads > 1 {
                    skipped.push(TrendSkip {
                        row: row.key.clone(),
                        reason: format!(
                            "parallel speedup is not comparable: baseline measured on \
                             {c} cores, this host has {fc}"
                        ),
                    });
                    continue;
                }
            }
        }
        pairs.push((row.key.clone(), row.ips, f.ips));
    }
    if pairs.is_empty() {
        return Err("no matching throughput rows between the reports".to_string());
    }

    // Machine calibration: the median fresh/committed ratio. Robust to a
    // minority of genuine regressions — those sit below the median and
    // are exactly what the per-row check then catches.
    let mut ratios: Vec<f64> = pairs.iter().map(|(_, c, f)| f / c).collect();
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("throughput ratios are finite"));
    let calibration = if ratios.len() % 2 == 1 {
        ratios[ratios.len() / 2]
    } else {
        (ratios[ratios.len() / 2 - 1] + ratios[ratios.len() / 2]) / 2.0
    };

    let mut regressions = Vec::new();
    for (key, c_ips, f_ips) in &pairs {
        let required = c_ips * calibration * (1.0 - TREND_TOLERANCE);
        if *f_ips < required {
            regressions.push(TrendRegression {
                row: key.clone(),
                committed_ips: *c_ips,
                fresh_ips: *f_ips,
                required_ips: required,
            });
        }
    }

    // Absolute backstop: whatever the calibration says, the fresh
    // no-prefetch engine rows must still clear the committed smoke floor
    // (with the same 30% noise allowance the smoke gate applies). A
    // calibration ratio cannot talk the gate out of a machine-wide
    // collapse.
    let floor = committed
        .get("smoke_floor_instrs_per_sec")
        .and_then(Json::as_f64)
        .expect("validated above");
    for row in &fresh_rows {
        let is_none_engine_row = row.threads.is_none() && row.key.ends_with("/None");
        if is_none_engine_row && row.ips < floor * (1.0 - TREND_TOLERANCE) {
            let already = regressions.iter().any(|r| r.row == row.key);
            if !already {
                regressions.push(TrendRegression {
                    row: row.key.clone(),
                    committed_ips: floor,
                    fresh_ips: row.ips,
                    required_ips: floor * (1.0 - TREND_TOLERANCE),
                });
            }
        }
    }

    Ok(TrendReport {
        calibration,
        rows_compared: pairs.len(),
        regressions,
        skipped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(elapsed_s: f64) -> Vec<RunResult> {
        vec![
            RunResult {
                workload: "OLTP-DB2".into(),
                prefetcher: "None",
                instructions: 300_000,
                elapsed_s,
                uipc: 1.5,
            },
            RunResult {
                workload: "OLTP-DB2".into(),
                prefetcher: "PIF",
                instructions: 300_000,
                elapsed_s: elapsed_s * 2.0,
                uipc: 2.0,
            },
        ]
    }

    fn sample_aggregates() -> Vec<AggregateResult> {
        vec![AggregateResult {
            workload: "OLTP-DB2".into(),
            prefetcher: "PIF",
            threads: 8,
            windows: 30,
            instructions: 1_200_000,
            elapsed_s: 0.01,
            serial_elapsed_s: 0.06,
        }]
    }

    #[test]
    fn verdict_trips_only_below_the_noisy_floor() {
        assert!(smoke_passed(SMOKE_FLOOR_IPS));
        assert!(smoke_passed(smoke_threshold_ips()));
        assert!(!smoke_passed(smoke_threshold_ips() * 0.99));
    }

    #[test]
    fn none_ips_picks_the_gated_configuration() {
        let results = sample(0.01); // None: 30 Minstr/s
        assert!((none_ips(&results) - 30.0e6).abs() < 1.0);
        assert!(smoke_passed(none_ips(&results)));
        let slow = sample(1.0); // None: 0.3 Minstr/s — regression
        assert!(!smoke_passed(none_ips(&slow)));
    }

    #[test]
    fn failing_smoke_run_renders_an_honest_artifact() {
        let slow = sample(1.0);
        let verdict = smoke_passed(none_ips(&slow));
        assert!(!verdict);
        let json = render_json(&slow, &[], 300_000, true, Some(verdict), None, None, 8);
        validate_json(&json).expect("artifact parses");
        let doc = Json::parse(&json).unwrap();
        validate_engine_report(&doc).expect("artifact validates");
        assert_eq!(doc.get("smoke_passed").and_then(Json::as_bool), Some(false));
        assert_eq!(doc.get("smoke").and_then(Json::as_bool), Some(true));
        assert_eq!(doc.get("probe_overhead_pct"), Some(&Json::Null));
        assert_eq!(doc.get("failpoint_overhead_pct"), Some(&Json::Null));
    }

    #[test]
    fn full_run_omits_the_verdict_entirely() {
        // The v1 schema rendered `smoke_passed: null` on full runs; v2
        // omits the key, so presence always means a computed verdict.
        let json = render_json(&sample(0.01), &[], 2_000_000, false, None, None, None, 8);
        validate_json(&json).expect("artifact parses");
        let doc = Json::parse(&json).unwrap();
        validate_engine_report(&doc).expect("artifact validates");
        assert_eq!(doc.get("smoke_passed"), None);
        assert_eq!(
            doc.get("results").and_then(Json::as_arr).map(<[_]>::len),
            Some(2)
        );
    }

    #[test]
    fn absent_or_bool_is_enforced_by_the_validator() {
        let json = render_json(&sample(0.01), &[], 300_000, true, Some(true), None, None, 8);
        let doc = Json::parse(&json).unwrap();
        validate_engine_report(&doc).expect("bool verdict validates");
        // A v2 document with a null verdict violates the contract.
        let null_verdict = json.replace("\"smoke_passed\": true", "\"smoke_passed\": null");
        let doc = Json::parse(&null_verdict).unwrap();
        let err = validate_engine_report(&doc).unwrap_err();
        assert!(err.contains("absent or a bool"), "{err}");
        // ...but a committed v1 baseline with `null` is still readable.
        let v1 = null_verdict.replace("pif-bench-engine/v2", "pif-bench-engine/v1");
        let doc = Json::parse(&v1).unwrap();
        validate_engine_report(&doc).expect("v1 null verdict is accepted");
    }

    #[test]
    fn aggregate_rows_render_and_validate() {
        let json = render_json(
            &sample(0.01),
            &sample_aggregates(),
            2_000_000,
            false,
            None,
            None,
            None,
            8,
        );
        validate_json(&json).expect("artifact parses");
        let doc = Json::parse(&json).unwrap();
        validate_engine_report(&doc).expect("artifact validates");
        let aggs = doc.get("aggregate").and_then(Json::as_arr).unwrap();
        assert_eq!(aggs.len(), 1);
        let a = &aggs[0];
        assert_eq!(a.get("threads").and_then(Json::as_f64), Some(8.0));
        let ips = a
            .get("aggregate_instrs_per_sec")
            .and_then(Json::as_f64)
            .unwrap();
        assert!((ips - 120.0e6).abs() < 1e3, "1.2M instrs / 0.01s: {ips}");
        let speedup = a.get("parallel_speedup").and_then(Json::as_f64).unwrap();
        assert!((speedup - 6.0).abs() < 1e-9);
    }

    #[test]
    fn probe_overhead_renders_as_a_number_when_measured() {
        let json = render_json(
            &sample(0.01),
            &[],
            2_000_000,
            false,
            None,
            Some(1.234),
            None,
            8,
        );
        validate_json(&json).expect("artifact parses");
        let doc = Json::parse(&json).unwrap();
        let pct = doc
            .get("probe_overhead_pct")
            .and_then(Json::as_f64)
            .expect("probe_overhead_pct is a number");
        assert!((pct - 1.23).abs() < 1e-9, "rounded to 2 decimals: {pct}");
        assert_eq!(doc.get("failpoint_overhead_pct"), Some(&Json::Null));
    }

    #[test]
    fn failpoint_overhead_renders_as_a_number_when_measured() {
        // Negative residuals (the failpointed loop winning a coin flip on
        // a quiet machine) must render as plain numbers, not vanish.
        let json = render_json(
            &sample(0.01),
            &[],
            2_000_000,
            false,
            None,
            None,
            Some(-0.057),
            8,
        );
        validate_json(&json).expect("artifact parses");
        let doc = Json::parse(&json).unwrap();
        let pct = doc
            .get("failpoint_overhead_pct")
            .and_then(Json::as_f64)
            .expect("failpoint_overhead_pct is a number");
        assert!((pct - -0.06).abs() < 1e-9, "rounded to 2 decimals: {pct}");
    }

    #[test]
    fn validate_rejects_garbage() {
        assert!(validate_json("{\"a\": }").is_err());
        assert!(validate_json("{} trailing").is_err());
    }

    // --- trend gate ---

    /// Renders a full-mode report whose None row runs at `none_mips` and
    /// PIF row at half that, plus one aggregate row at `agg_mips`,
    /// measured on an 8-core host.
    fn trend_doc(none_mips: f64, pif_mips: f64, agg_mips: f64) -> Json {
        trend_doc_on(8, none_mips, pif_mips, agg_mips)
    }

    /// [`trend_doc`] with an explicit recorded `host_cores`.
    fn trend_doc_on(cores: usize, none_mips: f64, pif_mips: f64, agg_mips: f64) -> Json {
        Json::parse(&trend_json_on(cores, none_mips, pif_mips, agg_mips)).unwrap()
    }

    /// The rendered report text behind [`trend_doc_on`], for tests that
    /// manipulate the raw document.
    fn trend_json_on(cores: usize, none_mips: f64, pif_mips: f64, agg_mips: f64) -> String {
        let results = vec![
            RunResult {
                workload: "OLTP-DB2".into(),
                prefetcher: "None",
                instructions: 1_000_000,
                elapsed_s: 1.0 / none_mips,
                uipc: 1.5,
            },
            RunResult {
                workload: "OLTP-DB2".into(),
                prefetcher: "PIF",
                instructions: 1_000_000,
                elapsed_s: 1.0 / pif_mips,
                uipc: 2.0,
            },
        ];
        let aggregates = vec![AggregateResult {
            workload: "OLTP-DB2".into(),
            prefetcher: "PIF",
            threads: 8,
            windows: 30,
            instructions: 1_000_000,
            elapsed_s: 1.0 / agg_mips,
            serial_elapsed_s: 2.0 / agg_mips,
        }];
        render_json(
            &results,
            &aggregates,
            1_000_000,
            false,
            None,
            None,
            None,
            cores,
        )
    }

    #[test]
    fn identical_reports_pass_the_trend_gate() {
        let doc = trend_doc(30.0, 15.0, 100.0);
        let report = compare_trend(&doc, &doc).unwrap();
        assert!(report.passed(), "{:?}", report.regressions);
        assert_eq!(report.rows_compared, 3);
        assert!((report.calibration - 1.0).abs() < 1e-12);
    }

    #[test]
    fn a_uniformly_slower_machine_is_calibrated_away() {
        // A CI runner 3x slower than the dev machine that committed the
        // baseline: every ratio is 1/3, the median calibration absorbs
        // it, nothing trips.
        let committed = trend_doc(30.0, 15.0, 100.0);
        let fresh = trend_doc(10.0, 5.0, 33.3);
        let report = compare_trend(&committed, &fresh).unwrap();
        assert!(report.passed(), "{:?}", report.regressions);
        assert!((report.calibration - 1.0 / 3.0).abs() < 0.01);
    }

    #[test]
    fn a_single_row_regression_trips_the_gate() {
        let committed = trend_doc(30.0, 15.0, 100.0);
        // PIF alone collapses to 35% of its committed throughput; the
        // other rows hold, so calibration stays ~1 and PIF trips.
        let fresh = trend_doc(30.0, 15.0 * 0.35, 100.0);
        let report = compare_trend(&committed, &fresh).unwrap();
        assert!(!report.passed());
        assert_eq!(report.regressions.len(), 1);
        assert_eq!(report.regressions[0].row, "OLTP-DB2/PIF");
    }

    #[test]
    fn an_aggregate_row_regression_trips_the_gate() {
        let committed = trend_doc(30.0, 15.0, 100.0);
        let fresh = trend_doc(30.0, 15.0, 30.0);
        let report = compare_trend(&committed, &fresh).unwrap();
        assert!(!report.passed());
        assert_eq!(report.regressions.len(), 1);
        assert_eq!(report.regressions[0].row, "aggregate OLTP-DB2/PIF@8");
    }

    #[test]
    fn the_absolute_floor_catches_a_machine_wide_collapse() {
        // Every row 100x slower: calibration alone would pass it (the
        // trend is "consistent"), but the fresh None row lands below the
        // committed absolute smoke floor and the backstop trips.
        let committed = trend_doc(30.0, 15.0, 100.0);
        let fresh = trend_doc(0.3, 0.15, 1.0);
        let report = compare_trend(&committed, &fresh).unwrap();
        assert!(!report.passed());
        assert!(
            report.regressions.iter().any(|r| r.row == "OLTP-DB2/None"),
            "{:?}",
            report.regressions
        );
    }

    #[test]
    fn a_fan_out_wider_than_the_host_is_skipped_not_failed() {
        // Baseline recorded on a 16-core dev machine; fresh run on a
        // 2-core CI runner where the 8-thread fan-out collapses. The old
        // gate flagged that collapse as a regression; now the row is
        // skipped with a reason and the serial rows still gate.
        let committed = trend_doc_on(16, 30.0, 15.0, 100.0);
        let fresh = trend_doc_on(2, 30.0, 15.0, 12.0);
        let report = compare_trend(&committed, &fresh).unwrap();
        assert!(report.passed(), "{:?}", report.regressions);
        assert_eq!(report.rows_compared, 2, "only the serial rows compare");
        assert_eq!(report.skipped.len(), 1);
        assert_eq!(report.skipped[0].row, "aggregate OLTP-DB2/PIF@8");
        assert!(
            report.skipped[0]
                .reason
                .contains("exceeds this host's 2 cores"),
            "{}",
            report.skipped[0].reason
        );
        // The skip is not a free pass for serial code: a genuine engine
        // regression on the same small host still trips.
        let regressed = trend_doc_on(2, 30.0, 15.0 * 0.35, 12.0);
        let report = compare_trend(&committed, &regressed).unwrap();
        assert!(!report.passed());
        assert_eq!(report.regressions[0].row, "OLTP-DB2/PIF");
    }

    #[test]
    fn differing_core_counts_exclude_speedup_sensitive_rows() {
        // The other mismatch direction: the fresh host is *wider* than
        // the baseline's (8-thread fan-out fits both), but parallel
        // speedup still does not transfer across machine shapes — the
        // aggregate row is excluded from the 30% check in either
        // direction, with the skip recorded.
        let committed = trend_doc_on(4, 30.0, 15.0, 100.0);
        let fresh = trend_doc_on(32, 30.0, 15.0, 320.0);
        let report = compare_trend(&committed, &fresh).unwrap();
        assert!(report.passed(), "{:?}", report.regressions);
        assert_eq!(report.rows_compared, 2);
        assert_eq!(report.skipped.len(), 1);
        assert!(
            report.skipped[0]
                .reason
                .contains("baseline measured on 4 cores, this host has 32"),
            "{}",
            report.skipped[0].reason
        );
        // And the collapse direction on the same shapes: a wild aggregate
        // value must not drag the calibration or trip the gate either.
        let fresh = trend_doc_on(32, 30.0, 15.0, 9.0);
        let report = compare_trend(&committed, &fresh).unwrap();
        assert!(report.passed(), "{:?}", report.regressions);
        assert_eq!(report.skipped.len(), 1);
    }

    #[test]
    fn baselines_without_host_cores_compare_everything() {
        // Reports written before the portability fix lack `host_cores`;
        // the gate keeps its old compare-every-matching-row behavior for
        // them rather than guessing at machine shapes.
        let strip = |json: String| {
            assert!(json.contains("\"host_cores\": 8,"), "{json}");
            Json::parse(&json.replace("  \"host_cores\": 8,\n", "")).unwrap()
        };
        let committed = strip(trend_json_on(8, 30.0, 15.0, 100.0));
        let fresh = strip(trend_json_on(8, 30.0, 15.0, 30.0));
        validate_engine_report(&committed).expect("host_cores is optional");
        let report = compare_trend(&committed, &fresh).unwrap();
        assert_eq!(report.rows_compared, 3);
        assert!(report.skipped.is_empty());
        assert!(!report.passed(), "aggregate regression still compared");
        assert_eq!(report.regressions[0].row, "aggregate OLTP-DB2/PIF@8");
    }

    #[test]
    fn a_committed_v1_baseline_is_accepted() {
        let committed_json = render_json(&sample(0.01), &[], 300_000, false, None, None, None, 8)
            .replace("pif-bench-engine/v2", "pif-bench-engine/v1")
            .replace("  \"aggregate\": [\n  ]\n}", "  \"aggregate\": []\n}");
        let committed = Json::parse(&committed_json).unwrap();
        validate_engine_report(&committed).expect("v1 baseline validates");
        let fresh = Json::parse(&render_json(
            &sample(0.012),
            &sample_aggregates(),
            300_000,
            false,
            None,
            None,
            None,
            8,
        ))
        .unwrap();
        // Aggregate rows exist only in the fresh report: ignored, the
        // engine rows still gate.
        let report = compare_trend(&committed, &fresh).unwrap();
        assert_eq!(report.rows_compared, 2);
        assert!(report.passed(), "{:?}", report.regressions);
    }
}
