//! Shared fixtures for the Criterion benchmark suites.
//!
//! Two suites live in `benches/`:
//!
//! * `components` — microbenchmarks of every hardware structure (caches,
//!   predictors, compactors, history buffer, SABs, front end, engine);
//! * `figures` — one benchmark per paper table/figure, timing the
//!   experiment runners at a reduced scale (the full-scale numbers are
//!   produced by the `pif-experiments` binaries).

#![warn(missing_docs)]

pub mod report;

use pif_types::RetiredInstr;
use pif_workloads::WorkloadProfile;

/// A standard small OLTP trace used across benchmarks.
pub fn bench_trace(instructions: usize) -> Vec<RetiredInstr> {
    WorkloadProfile::oltp_db2()
        .scaled(0.2)
        .generate(instructions)
        .instrs()
        .to_vec()
}

/// The benchmark experiment scale: small enough for Criterion iteration,
/// large enough to exercise real cache pressure.
pub fn bench_scale() -> pif_experiments::Scale {
    pif_experiments::Scale {
        instructions: 120_000,
        footprint: 0.15,
        warmup_fraction: 0.3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_produce_data() {
        assert_eq!(bench_trace(1_000).len(), 1_000);
        assert_eq!(bench_scale().instructions, 120_000);
    }
}
