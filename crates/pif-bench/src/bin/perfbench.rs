//! `perfbench` — end-to-end engine throughput harness.
//!
//! Measures retired instructions per second of wall-clock time for the
//! simulation engine with every prefetcher (None, PIF, Next-Line, TIFS,
//! Discontinuity, Perfect) on standard workload profiles, and writes the
//! result as `BENCH_engine.json` — one point of the repository's tracked
//! performance trajectory.
//!
//! ```text
//! cargo run --release -p pif-bench --bin perfbench            # full run, writes BENCH_engine.json
//! cargo run --release -p pif-bench --bin perfbench -- --smoke # CI mode: small trace, floor check
//! cargo run --release -p pif-bench --bin perfbench -- --out /tmp/b.json
//! cargo run --release -p pif-bench --bin perfbench -- --sampled   # sampled-vs-exhaustive comparison
//! cargo run --release -p pif-bench --bin perfbench -- --aggregate # + parallel fan-out rows
//! ```
//!
//! `--sampled` switches to the sampled-simulation comparison: the
//! workload is recorded to a compressed trace file once, then simulated
//! both exhaustively (streaming the whole file) and via
//! `pif_sim::sampling::sample_trace_file` (seeking only the sampled
//! windows), printing wall-clock speedup and whether the sampled UIPC
//! estimate lands within its own reported ci95 of the exhaustive value.
//! Combine with `--smoke` for a small CI-sized trace.
//!
//! `--aggregate` additionally measures **parallel sampled execution**:
//! the workload is recorded to a trace file, a per-window sampling plan
//! is fanned out on a `pif_lab::Pool` at several thread counts via
//! `pif_lab::sampled::sample_trace_file_parallel`, and each fan-out's
//! aggregate simulated instructions per wall-clock second (warmup
//! included — it is work the fan-out performs) lands in the report's
//! `"aggregate"` array. The parallel report is asserted byte-equal to
//! the serial one before any row is recorded, so a throughput number
//! can never come from a run that changed the results.
//!
//! In `--smoke` mode the harness runs a reduced trace and fails (exit 1)
//! if the no-prefetch engine's throughput drops more than 30% below the
//! committed floor — a coarse tripwire against hot-loop performance
//! regressions that works even on noisy CI machines. The floor verdict
//! is computed **before** the JSON artifact is written and embedded in
//! it as `"smoke_passed"` (see [`pif_bench::report`]), so a failing run
//! never leaves a passing-looking artifact behind.

use std::time::Instant;

use pif_baselines::{DiscontinuityPrefetcher, NextLinePrefetcher, PerfectICache, Tifs};
use pif_bench::report::{
    host_cores, none_ips, render_json, smoke_passed, smoke_threshold_ips, validate_engine_report,
    validate_json, AggregateResult, RunResult, PRIOR_NONE_IPS, PRIOR_PIF_IPS, SMOKE_FLOOR_IPS,
};
use pif_core::{Pif, PifConfig};
use pif_sim::{Engine, EngineConfig, EngineProbe, NoPrefetcher, RunOptions};
use pif_types::RetiredInstr;
use pif_workloads::WorkloadProfile;

fn measure(
    engine: &Engine,
    workload: &str,
    trace: &[RetiredInstr],
    warmup: usize,
    reps: usize,
) -> Vec<RunResult> {
    let mut out = Vec::new();
    let mut run = |name: &'static str, f: &mut dyn FnMut() -> pif_sim::RunReport| {
        // Best-of-N wall clock: robust against scheduler noise.
        let mut best = f64::MAX;
        let mut report = None;
        for _ in 0..reps {
            let t0 = Instant::now();
            let r = f();
            best = best.min(t0.elapsed().as_secs_f64());
            report = Some(r);
        }
        let report = report.expect("at least one rep");
        out.push(RunResult {
            workload: workload.to_string(),
            prefetcher: name,
            instructions: report.frontend.instructions,
            elapsed_s: best,
            uipc: report.timing.uipc(),
        });
    };
    run("None", &mut || {
        engine.run(
            trace.iter().copied(),
            NoPrefetcher,
            RunOptions::new().warmup(warmup),
        )
    });
    run("PIF", &mut || {
        engine.run(
            trace.iter().copied(),
            Pif::new(PifConfig::paper_default()),
            RunOptions::new().warmup(warmup),
        )
    });
    run("Next-Line", &mut || {
        engine.run(
            trace.iter().copied(),
            NextLinePrefetcher::aggressive(),
            RunOptions::new().warmup(warmup),
        )
    });
    run("TIFS", &mut || {
        engine.run(
            trace.iter().copied(),
            Tifs::new(Default::default()),
            RunOptions::new().warmup(warmup),
        )
    });
    run("Discontinuity", &mut || {
        engine.run(
            trace.iter().copied(),
            DiscontinuityPrefetcher::paper_scale(),
            RunOptions::new().warmup(warmup),
        )
    });
    run("Perfect", &mut || {
        engine.run(
            trace.iter().copied(),
            PerfectICache,
            RunOptions::new().warmup(warmup),
        )
    });
    out
}

/// Measures the wall-clock cost of running the engine with a live
/// [`EngineProbe`] relative to the `NoProbe` default, in percent, on the
/// PIF configuration (the probe's busiest path: stall breakdown, queue
/// depth, and SAB gauges all fire). The plain and probed runs are
/// interleaved within each rep so clock drift and scheduler noise hit
/// both sides equally, then best-of-N is taken per side; small negative
/// values are residual noise, not a speedup.
fn measure_probe_overhead(
    engine: &Engine,
    trace: &[RetiredInstr],
    warmup: usize,
    reps: usize,
) -> f64 {
    let reps = reps.max(7);
    let mut plain_s = f64::MAX;
    let mut probed_s = f64::MAX;
    for _ in 0..reps {
        let t0 = Instant::now();
        engine.run(
            trace.iter().copied(),
            Pif::new(PifConfig::paper_default()),
            RunOptions::new().warmup(warmup),
        );
        plain_s = plain_s.min(t0.elapsed().as_secs_f64());

        let mut probe = EngineProbe::new();
        let t1 = Instant::now();
        engine.run_probed(
            trace.iter().copied(),
            Pif::new(PifConfig::paper_default()),
            RunOptions::new().warmup(warmup),
            &mut probe,
        );
        probed_s = probed_s.min(t1.elapsed().as_secs_f64());
    }
    (probed_s - plain_s) / plain_s * 100.0
}

/// The plain half of the failpoint-erasure pair: an integer-mixing hot
/// loop with a serial data dependency, `#[inline(never)]` so the two
/// halves compile as separate functions and `black_box` so neither folds
/// to a constant.
#[inline(never)]
fn mix_loop_plain(iters: u64) -> u64 {
    let mut acc = 0x9e37_79b9_7f4a_7c15u64;
    for i in 0..iters {
        acc = acc
            .wrapping_mul(0x2545_f491_4f6c_dd1d)
            .wrapping_add(std::hint::black_box(i));
    }
    acc
}

/// The instrumented half: byte-identical to [`mix_loop_plain`] except
/// for a `fail_point!` per iteration. In the default build the macro
/// expands to nothing, so any measured difference between the halves is
/// residual noise — that near-zero percentage is the erasure proof the
/// report carries as `failpoint_overhead_pct`.
#[inline(never)]
fn mix_loop_failpointed(iters: u64) -> u64 {
    let mut acc = 0x9e37_79b9_7f4a_7c15u64;
    for i in 0..iters {
        pif_fail::fail_point!("bench.mix.iter");
        acc = acc
            .wrapping_mul(0x2545_f491_4f6c_dd1d)
            .wrapping_add(std::hint::black_box(i));
    }
    acc
}

/// Measures the wall-clock cost of the failpointed hot loop relative to
/// the plain one, in percent. Same discipline as
/// [`measure_probe_overhead`]: interleaved within each rep, best-of-N
/// per side. With `fail-inject` off (the default) this quantifies the
/// compile-time erasure guarantee; with it on, the armed-but-idle cost.
fn measure_failpoint_overhead(reps: usize) -> f64 {
    const ITERS: u64 = 10_000_000;
    let reps = reps.max(7);
    let mut plain_s = f64::MAX;
    let mut failpointed_s = f64::MAX;
    let mut sink = 0u64;
    for _ in 0..reps {
        let t0 = Instant::now();
        sink ^= mix_loop_plain(ITERS);
        plain_s = plain_s.min(t0.elapsed().as_secs_f64());

        let t1 = Instant::now();
        sink ^= mix_loop_failpointed(ITERS);
        failpointed_s = failpointed_s.min(t1.elapsed().as_secs_f64());
    }
    std::hint::black_box(sink);
    (failpointed_s - plain_s) / plain_s * 100.0
}

/// One prefetcher's sampled-vs-exhaustive comparison (`--sampled` mode):
/// both runs drive the same on-disk trace; the sampled run decodes only
/// its windows.
fn compare_sampled<P: pif_sim::Prefetcher>(
    engine: &Engine,
    path: &std::path::Path,
    plan: &pif_sim::sampling::SamplingPlan,
    warmup: usize,
    mut mk: impl FnMut() -> P,
) -> (f64, f64, pif_sim::multicore::Summary, f64) {
    let t0 = Instant::now();
    let file = std::fs::File::open(path).expect("trace file exists");
    let mut source = pif_trace::TraceReader::open(std::io::BufReader::new(file))
        .expect("trace opens")
        .instrs();
    let exhaustive = engine.run(&mut source, mk(), RunOptions::new().warmup(warmup));
    assert!(source.error().is_none(), "clean exhaustive decode");
    let exhaustive_s = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let sampled = pif_sim::sampling::sample_trace_file(engine.config(), plan, path, |_| mk())
        .expect("sampled run decodes");
    let sampled_s = t1.elapsed().as_secs_f64();
    (
        exhaustive.timing.uipc(),
        exhaustive_s,
        sampled.uipc(),
        sampled_s,
    )
}

fn run_sampled_mode(smoke: bool) {
    let instructions: usize = if smoke { 500_000 } else { 10_000_000 };
    let profile = if smoke {
        WorkloadProfile::oltp_db2().scaled(0.1)
    } else {
        WorkloadProfile::oltp_db2()
    };
    let path = std::env::temp_dir().join(format!("perfbench-sampled-{}.pift", std::process::id()));
    eprintln!(
        "perfbench --sampled: recording {} × {instructions} instrs to {}",
        profile.name(),
        path.display()
    );
    let file = std::fs::File::create(&path).expect("temp trace writable");
    let mut writer = pif_trace::TraceWriter::new(std::io::BufWriter::new(file), profile.name())
        .expect("writer opens");
    let mut io_err = None;
    profile.generate_into(instructions, |instr| {
        if io_err.is_none() {
            io_err = writer.push(&instr).err();
        }
    });
    assert!(io_err.is_none(), "{io_err:?}");
    writer.finish().expect("trace seals");

    let engine = Engine::new(EngineConfig::paper_default());
    let warmup = instructions * 3 / 10;
    let measure = (instructions as u64 / 500).max(1_000);
    let plan =
        pif_sim::sampling::SamplingPlan::random(30, 0x9a3f, 3 * measure, measure).with_burn_in(6);
    println!(
        "plan: {} samples × ({} warmup + {} measure), burn-in {}, over {instructions} instrs",
        plan.samples, plan.warmup_instrs, plan.measure_instrs, plan.burn_in
    );
    println!(
        "{:<14} {:>9} {:>8}  {:>9} {:>9} {:>8}  {:>7}  WITHIN_CI95",
        "PREFETCHER", "EX_UIPC", "EX_S", "S_MEAN", "S_CI95", "S_S", "SPEEDUP"
    );
    let run = |name: &str, result: (f64, f64, pif_sim::multicore::Summary, f64)| {
        let (ex_uipc, ex_s, s, s_s) = result;
        let within = (s.mean - ex_uipc).abs() <= s.ci95;
        println!(
            "{name:<14} {ex_uipc:>9.4} {ex_s:>8.3}  {:>9.4} {:>9.4} {s_s:>8.3}  {:>6.1}x  {within}",
            s.mean,
            s.ci95,
            ex_s / s_s.max(1e-9),
        );
    };
    run(
        "None",
        compare_sampled(&engine, &path, &plan, warmup, || NoPrefetcher),
    );
    run(
        "PIF",
        compare_sampled(&engine, &path, &plan, warmup, || {
            Pif::new(PifConfig::paper_default())
        }),
    );
    run(
        "Next-Line",
        compare_sampled(
            &engine,
            &path,
            &plan,
            warmup,
            NextLinePrefetcher::aggressive,
        ),
    );
    run(
        "TIFS",
        compare_sampled(&engine, &path, &plan, warmup, || {
            Tifs::new(Default::default())
        }),
    );
    run(
        "Discontinuity",
        compare_sampled(
            &engine,
            &path,
            &plan,
            warmup,
            DiscontinuityPrefetcher::paper_scale,
        ),
    );
    run(
        "Perfect",
        compare_sampled(&engine, &path, &plan, warmup, || PerfectICache),
    );
    std::fs::remove_file(&path).ok();
}

/// Thread counts the aggregate mode sweeps. Recorded verbatim in the
/// report's `threads` field, so a trend comparison always matches rows
/// at the same fan-out width.
const AGGREGATE_THREADS: &[usize] = &[1, 2, 4, 8];

/// Measured instructions per sample window in the aggregate mode, fixed
/// across smoke and full runs. Per-window fixed costs (cache re-warm,
/// dispatch) dominate throughput at small windows, so letting the window
/// size scale with the run length would make smoke rows incomparable to
/// the committed full-mode baseline the trend gate checks them against.
const AGGREGATE_MEASURE_INSTRS: u64 = 8_000;

/// Measures parallel sampled-execution throughput (`--aggregate`): a
/// per-window plan over an on-disk trace, fanned out at each width in
/// [`AGGREGATE_THREADS`] for the no-prefetch and PIF configurations.
/// Every fan-out's report is asserted equal to the serial driver's
/// before its timing is kept — the determinism contract is load-bearing
/// for the numbers, not just a test elsewhere.
fn run_aggregate_mode(smoke: bool) -> Vec<AggregateResult> {
    use pif_lab::sampled::sample_trace_file_parallel;
    use pif_lab::Pool;
    use pif_sim::sampling::{sample_trace_file, SamplingPlan, WarmStrategy};

    let instructions: usize = if smoke { 400_000 } else { 4_000_000 };
    let profile = if smoke {
        WorkloadProfile::oltp_db2().scaled(0.1)
    } else {
        WorkloadProfile::oltp_db2().scaled(0.2)
    };
    let path =
        std::env::temp_dir().join(format!("perfbench-aggregate-{}.pift", std::process::id()));
    eprintln!(
        "perfbench --aggregate: recording {} × {instructions} instrs to {}",
        profile.name(),
        path.display()
    );
    let file = std::fs::File::create(&path).expect("temp trace writable");
    let mut writer = pif_trace::TraceWriter::new(std::io::BufWriter::new(file), profile.name())
        .expect("writer opens");
    let mut io_err = None;
    profile.generate_into(instructions, |instr| {
        if io_err.is_none() {
            io_err = writer.push(&instr).err();
        }
    });
    assert!(io_err.is_none(), "{io_err:?}");
    writer.finish().expect("trace seals");

    let config = EngineConfig::paper_default();
    let measure = AGGREGATE_MEASURE_INSTRS;
    let samples = if smoke { 12 } else { 30 };
    let plan = SamplingPlan::random(samples, 0x9a3f, 3 * measure, measure)
        .with_warm_strategy(WarmStrategy::PerWindow {
            extra_warmup_instrs: measure,
        })
        .with_burn_in(if smoke { 2 } else { 6 });
    // Simulated work per fan-out: every window end to end, warmup
    // included — that is what the workers execute.
    let all_windows = plan.windows(instructions as u64);
    let simulated: u64 = all_windows.iter().map(|w| w.len()).sum();
    let windows = all_windows.len();
    println!(
        "aggregate plan: {windows} windows × ({} warmup + {} measure) = {simulated} simulated instrs",
        plan.effective_warmup_instrs(),
        plan.measure_instrs,
    );

    let mut out = Vec::new();
    let mut sweep = |name: &'static str, mk: &(dyn Fn() -> Box<dyn pif_sim::Prefetcher> + Sync)| {
        let t0 = Instant::now();
        let serial =
            sample_trace_file(&config, &plan, &path, |_| mk()).expect("serial sampled run decodes");
        let serial_s = t0.elapsed().as_secs_f64();
        for &threads in AGGREGATE_THREADS {
            let pool = Pool::new(threads);
            let t1 = Instant::now();
            let parallel = sample_trace_file_parallel(&config, &plan, &path, |_| mk(), &pool)
                .expect("parallel sampled run decodes");
            let elapsed_s = t1.elapsed().as_secs_f64();
            assert_eq!(
                parallel, serial,
                "{name}@{threads}: parallel report must equal serial before its timing counts"
            );
            let row = AggregateResult {
                workload: profile.name().to_string(),
                prefetcher: name,
                threads,
                windows,
                instructions: simulated,
                elapsed_s,
                serial_elapsed_s: serial_s,
            };
            println!(
                "{:<12} {name:<6} threads={threads}  {:>8.2} Minstr/s aggregate  ({:.3}s, speedup {:.2}x)",
                row.workload,
                row.aggregate_ips() / 1e6,
                row.elapsed_s,
                row.parallel_speedup(),
            );
            out.push(row);
        }
    };
    sweep("None", &|| Box::new(NoPrefetcher));
    sweep("PIF", &|| Box::new(Pif::new(PifConfig::paper_default())));
    std::fs::remove_file(&path).ok();
    out
}

fn main() {
    let mut smoke = false;
    let mut sampled = false;
    let mut aggregate = false;
    let mut out_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--sampled" => sampled = true,
            "--aggregate" => aggregate = true,
            "--out" => {
                out_path = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: perfbench [--smoke] [--sampled] [--aggregate] [--out PATH]");
                std::process::exit(2);
            }
        }
    }
    if sampled {
        run_sampled_mode(smoke);
        return;
    }

    let (instructions, reps, profiles) = if smoke {
        (300_000, 1, vec![WorkloadProfile::oltp_db2().scaled(0.1)])
    } else {
        (
            2_000_000,
            3,
            vec![
                WorkloadProfile::oltp_db2().scaled(0.2),
                WorkloadProfile::web_apache().scaled(0.2),
            ],
        )
    };
    let warmup = instructions / 5;

    let engine = Engine::new(EngineConfig::paper_default());
    let mut results = Vec::new();
    let mut probe_overhead_pct = None;
    for (i, profile) in profiles.iter().enumerate() {
        eprintln!(
            "perfbench: {} × {} instrs ({} rep{})",
            profile.name(),
            instructions,
            reps,
            if reps == 1 { "" } else { "s" }
        );
        let trace = profile.generate(instructions);
        results.extend(measure(
            &engine,
            profile.name(),
            trace.instrs(),
            warmup,
            reps,
        ));
        if i == 0 {
            probe_overhead_pct = Some(measure_probe_overhead(
                &engine,
                trace.instrs(),
                warmup,
                reps,
            ));
        }
    }

    for r in &results {
        println!(
            "{:<12} {:<14} {:>8.2} Minstr/s  ({:.3}s, uipc {:.3})",
            r.workload,
            r.prefetcher,
            r.ips() / 1e6,
            r.elapsed_s,
            r.uipc
        );
    }
    let gated_ips = none_ips(&results);
    // The prior constants were measured on OLTP-DB2; compare like for like.
    let oltp_none_ips = results
        .iter()
        .filter(|r| r.prefetcher == "None" && r.workload == "OLTP-DB2")
        .map(RunResult::ips)
        .fold(f64::MAX, f64::min);
    let oltp_pif_ips = results
        .iter()
        .filter(|r| r.prefetcher == "PIF" && r.workload == "OLTP-DB2")
        .map(RunResult::ips)
        .fold(f64::MAX, f64::min);
    if oltp_none_ips < f64::MAX && oltp_pif_ips < f64::MAX {
        println!(
            "speedup vs pre-refactor hot loop (OLTP-DB2): None {:.2}x ({:.1}M -> {:.1}M), PIF {:.2}x ({:.1}M -> {:.1}M)",
            oltp_none_ips / PRIOR_NONE_IPS,
            PRIOR_NONE_IPS / 1e6,
            oltp_none_ips / 1e6,
            oltp_pif_ips / PRIOR_PIF_IPS,
            PRIOR_PIF_IPS / 1e6,
            oltp_pif_ips / 1e6,
        );
    }

    // Compute the floor verdict BEFORE writing anything: the artifact
    // must carry the verdict, and a failing run must never leave a
    // passing-looking report on disk.
    if let Some(pct) = probe_overhead_pct {
        println!(
            "probe overhead (live EngineProbe vs NoProbe, PIF on {}): {pct:.2}%",
            profiles[0].name()
        );
    }
    let failpoint_overhead_pct = Some(measure_failpoint_overhead(reps));
    if let Some(pct) = failpoint_overhead_pct {
        println!(
            "failpoint overhead (fail_point! {} vs plain hot loop): {pct:.2}%",
            if cfg!(feature = "fail-inject") {
                "armed"
            } else {
                "erased"
            }
        );
    }

    let aggregates = if aggregate {
        run_aggregate_mode(smoke)
    } else {
        Vec::new()
    };

    let verdict = smoke.then(|| smoke_passed(gated_ips));
    let json = render_json(
        &results,
        &aggregates,
        instructions,
        smoke,
        verdict,
        probe_overhead_pct,
        failpoint_overhead_pct,
        host_cores(),
    );
    if let Err(e) = validate_json(&json) {
        eprintln!("perfbench: emitted invalid JSON: {e}");
        std::process::exit(1);
    }
    let path = out_path.unwrap_or_else(|| {
        if smoke {
            std::env::temp_dir()
                .join("BENCH_engine_smoke.json")
                .to_string_lossy()
                .into_owned()
        } else {
            "BENCH_engine.json".to_string()
        }
    });
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("perfbench: cannot write {path}: {e}");
        std::process::exit(1);
    }
    // Re-read and re-validate: proves the artifact on disk parses and
    // keeps the v2 structural contract (absent-or-bool verdict, numeric
    // throughput on every row).
    match std::fs::read_to_string(&path).map_err(|e| e.to_string()) {
        Ok(disk) => match pif_lab::json::Json::parse(&disk) {
            Ok(doc) => {
                if let Err(e) = validate_engine_report(&doc) {
                    eprintln!("perfbench: {path} violates the engine-report schema: {e}");
                    std::process::exit(1);
                }
            }
            Err(e) => {
                eprintln!("perfbench: {path} does not parse: {e}");
                std::process::exit(1);
            }
        },
        Err(e) => {
            eprintln!("perfbench: cannot re-read {path}: {e}");
            std::process::exit(1);
        }
    }
    println!("wrote {path}");

    match verdict {
        Some(false) => {
            eprintln!(
                "perfbench: REGRESSION: no-prefetch throughput {:.2} Minstr/s is more than 30% \
                 below the committed floor of {:.2} Minstr/s (smoke_passed: false recorded in {path})",
                gated_ips / 1e6,
                SMOKE_FLOOR_IPS / 1e6
            );
            std::process::exit(1);
        }
        Some(true) => {
            println!(
                "smoke check passed: {:.2} Minstr/s >= {:.2} Minstr/s (floor {:.2}M - 30%)",
                gated_ips / 1e6,
                smoke_threshold_ips() / 1e6,
                SMOKE_FLOOR_IPS / 1e6
            );
        }
        None => {}
    }
}
