//! `perfbench` — end-to-end engine throughput harness.
//!
//! Measures retired instructions per second of wall-clock time for the
//! simulation engine with every prefetcher (None, PIF, Next-Line, TIFS,
//! Discontinuity, Perfect) on standard workload profiles, and writes the
//! result as `BENCH_engine.json` — one point of the repository's tracked
//! performance trajectory.
//!
//! ```text
//! cargo run --release -p pif-bench --bin perfbench            # full run, writes BENCH_engine.json
//! cargo run --release -p pif-bench --bin perfbench -- --smoke # CI mode: small trace, floor check
//! cargo run --release -p pif-bench --bin perfbench -- --out /tmp/b.json
//! ```
//!
//! In `--smoke` mode the harness runs a reduced trace, validates that the
//! emitted JSON parses, and fails (exit 1) if the no-prefetch engine's
//! throughput drops more than 30% below the committed floor — a coarse
//! tripwire against hot-loop performance regressions that works even on
//! noisy CI machines.

use std::time::Instant;

use pif_baselines::{DiscontinuityPrefetcher, NextLinePrefetcher, PerfectICache, Tifs};
use pif_core::{Pif, PifConfig};
use pif_sim::{Engine, EngineConfig, NoPrefetcher};
use pif_types::RetiredInstr;
use pif_workloads::WorkloadProfile;

/// Committed throughput floor for the `--smoke` regression gate, in
/// retired instructions per second of the no-prefetch configuration.
/// Chosen far below the development machine's ~70 Minstr/s so that slow
/// CI runners pass comfortably while a hot-loop regression (which shows
/// up as a multiple, not a percentage) still trips it.
const SMOKE_FLOOR_IPS: f64 = 4.0e6;

/// Pre-refactor throughput on the development machine (PR 2 tree, commit
/// `7b07f0d`; 2M-instruction OLTP-DB2 trace), quoted in the report so the
/// speedup of the flat-cache/zero-allocation refactor stays on record.
const PRIOR_NONE_IPS: f64 = 29.2e6;
const PRIOR_PIF_IPS: f64 = 15.6e6;

struct RunResult {
    workload: String,
    prefetcher: &'static str,
    instructions: u64,
    elapsed_s: f64,
    uipc: f64,
}

impl RunResult {
    fn ips(&self) -> f64 {
        self.instructions as f64 / self.elapsed_s
    }
}

fn measure(
    engine: &Engine,
    workload: &str,
    trace: &[RetiredInstr],
    warmup: usize,
    reps: usize,
) -> Vec<RunResult> {
    let mut out = Vec::new();
    let mut run = |name: &'static str, f: &mut dyn FnMut() -> pif_sim::RunReport| {
        // Best-of-N wall clock: robust against scheduler noise.
        let mut best = f64::MAX;
        let mut report = None;
        for _ in 0..reps {
            let t0 = Instant::now();
            let r = f();
            best = best.min(t0.elapsed().as_secs_f64());
            report = Some(r);
        }
        let report = report.expect("at least one rep");
        out.push(RunResult {
            workload: workload.to_string(),
            prefetcher: name,
            instructions: report.frontend.instructions,
            elapsed_s: best,
            uipc: report.timing.uipc(),
        });
    };
    run("None", &mut || {
        engine.run_instrs_warmup(trace, NoPrefetcher, warmup)
    });
    run("PIF", &mut || {
        engine.run_instrs_warmup(trace, Pif::new(PifConfig::paper_default()), warmup)
    });
    run("Next-Line", &mut || {
        engine.run_instrs_warmup(trace, NextLinePrefetcher::aggressive(), warmup)
    });
    run("TIFS", &mut || {
        engine.run_instrs_warmup(trace, Tifs::new(Default::default()), warmup)
    });
    run("Discontinuity", &mut || {
        engine.run_instrs_warmup(trace, DiscontinuityPrefetcher::paper_scale(), warmup)
    });
    run("Perfect", &mut || {
        engine.run_instrs_warmup(trace, PerfectICache, warmup)
    });
    out
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn render_json(results: &[RunResult], instructions: usize, smoke: bool) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"pif-bench-engine/v1\",\n");
    s.push_str(&format!("  \"smoke\": {smoke},\n"));
    s.push_str(&format!("  \"instructions_per_run\": {instructions},\n"));
    s.push_str(&format!(
        "  \"smoke_floor_instrs_per_sec\": {SMOKE_FLOOR_IPS:.1},\n"
    ));
    s.push_str(
        "  \"prior\": {\n    \"note\": \"pre-refactor throughput (heap-allocating hot loop, \
         pointer-chasing cache layout) on the same development machine\",\n",
    );
    s.push_str(&format!(
        "    \"none_instrs_per_sec\": {PRIOR_NONE_IPS:.1},\n    \"pif_instrs_per_sec\": {PRIOR_PIF_IPS:.1}\n  }},\n"
    ));
    s.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"workload\": \"{}\", \"prefetcher\": \"{}\", \"instructions\": {}, \
             \"elapsed_s\": {:.6}, \"instrs_per_sec\": {:.1}, \"uipc\": {:.4}}}{}\n",
            json_escape(&r.workload),
            json_escape(r.prefetcher),
            r.instructions,
            r.elapsed_s,
            r.ips(),
            r.uipc,
            if i + 1 == results.len() { "" } else { "," },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

// ---------------------------------------------------------------------------
// Minimal JSON parser: the workspace has no JSON dependency, and the smoke
// job must prove the report is well-formed, not just non-empty.

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn new(s: &'a str) -> Self {
        JsonParser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, msg: &str) -> String {
        format!("JSON parse error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a value")),
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.error(&format!("expected '{lit}'")))
        }
    }

    fn number(&mut self) -> Result<(), String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(|_| ())
            .ok_or_else(|| self.error("malformed number"))
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        while let Some(b) = self.peek() {
            self.pos += 1;
            match b {
                b'"' => return Ok(()),
                b'\\' => {
                    self.pos += 1; // skip the escaped byte
                }
                _ => {}
            }
        }
        Err(self.error("unterminated string"))
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }
}

/// Validates that `s` is one well-formed JSON document.
fn validate_json(s: &str) -> Result<(), String> {
    let mut p = JsonParser::new(s);
    p.value()?;
    p.skip_ws();
    if p.pos == p.bytes.len() {
        Ok(())
    } else {
        Err(p.error("trailing garbage after document"))
    }
}

fn main() {
    let mut smoke = false;
    let mut out_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => {
                out_path = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: perfbench [--smoke] [--out PATH]");
                std::process::exit(2);
            }
        }
    }

    let (instructions, reps, profiles) = if smoke {
        (300_000, 1, vec![WorkloadProfile::oltp_db2().scaled(0.1)])
    } else {
        (
            2_000_000,
            3,
            vec![
                WorkloadProfile::oltp_db2().scaled(0.2),
                WorkloadProfile::web_apache().scaled(0.2),
            ],
        )
    };
    let warmup = instructions / 5;

    let engine = Engine::new(EngineConfig::paper_default());
    let mut results = Vec::new();
    for profile in &profiles {
        eprintln!(
            "perfbench: {} × {} instrs ({} rep{})",
            profile.name(),
            instructions,
            reps,
            if reps == 1 { "" } else { "s" }
        );
        let trace = profile.generate(instructions);
        results.extend(measure(
            &engine,
            profile.name(),
            trace.instrs(),
            warmup,
            reps,
        ));
    }

    for r in &results {
        println!(
            "{:<12} {:<14} {:>8.2} Minstr/s  ({:.3}s, uipc {:.3})",
            r.workload,
            r.prefetcher,
            r.ips() / 1e6,
            r.elapsed_s,
            r.uipc
        );
    }
    let none_ips = results
        .iter()
        .filter(|r| r.prefetcher == "None")
        .map(RunResult::ips)
        .fold(f64::MAX, f64::min);
    // The prior constants were measured on OLTP-DB2; compare like for like.
    let oltp_none_ips = results
        .iter()
        .filter(|r| r.prefetcher == "None" && r.workload == "OLTP-DB2")
        .map(RunResult::ips)
        .fold(f64::MAX, f64::min);
    let oltp_pif_ips = results
        .iter()
        .filter(|r| r.prefetcher == "PIF" && r.workload == "OLTP-DB2")
        .map(RunResult::ips)
        .fold(f64::MAX, f64::min);
    if oltp_none_ips < f64::MAX && oltp_pif_ips < f64::MAX {
        println!(
            "speedup vs pre-refactor hot loop (OLTP-DB2): None {:.2}x ({:.1}M -> {:.1}M), PIF {:.2}x ({:.1}M -> {:.1}M)",
            oltp_none_ips / PRIOR_NONE_IPS,
            PRIOR_NONE_IPS / 1e6,
            oltp_none_ips / 1e6,
            oltp_pif_ips / PRIOR_PIF_IPS,
            PRIOR_PIF_IPS / 1e6,
            oltp_pif_ips / 1e6,
        );
    }

    let json = render_json(&results, instructions, smoke);
    if let Err(e) = validate_json(&json) {
        eprintln!("perfbench: emitted invalid JSON: {e}");
        std::process::exit(1);
    }
    let path = out_path.unwrap_or_else(|| {
        if smoke {
            std::env::temp_dir()
                .join("BENCH_engine_smoke.json")
                .to_string_lossy()
                .into_owned()
        } else {
            "BENCH_engine.json".to_string()
        }
    });
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("perfbench: cannot write {path}: {e}");
        std::process::exit(1);
    }
    // Re-read and re-validate: proves the artifact on disk parses.
    match std::fs::read_to_string(&path).map_err(|e| e.to_string()) {
        Ok(disk) => {
            if let Err(e) = validate_json(&disk) {
                eprintln!("perfbench: {path} does not parse: {e}");
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("perfbench: cannot re-read {path}: {e}");
            std::process::exit(1);
        }
    }
    println!("wrote {path}");

    if smoke {
        let threshold = SMOKE_FLOOR_IPS * 0.7;
        if none_ips < threshold {
            eprintln!(
                "perfbench: REGRESSION: no-prefetch throughput {:.2} Minstr/s is more than 30% \
                 below the committed floor of {:.2} Minstr/s",
                none_ips / 1e6,
                SMOKE_FLOOR_IPS / 1e6
            );
            std::process::exit(1);
        }
        println!(
            "smoke check passed: {:.2} Minstr/s >= {:.2} Minstr/s (floor {:.2}M - 30%)",
            none_ips / 1e6,
            threshold / 1e6,
            SMOKE_FLOOR_IPS / 1e6
        );
    }
}
