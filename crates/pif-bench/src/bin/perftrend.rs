//! `perftrend` — the CI performance-trend gate.
//!
//! ```text
//! perftrend <committed.json> <fresh.json>
//! ```
//!
//! Compares a freshly measured `perfbench` report against the committed
//! `BENCH_engine.json` baseline with
//! [`pif_bench::report::compare_trend`]: a machine-calibration ratio
//! (median fresh/committed throughput across matching rows) absorbs the
//! CI-runner-vs-dev-machine speed gap, then any row falling more than
//! 30% below its calibrated expectation — or a no-prefetch row breaching
//! the committed absolute smoke floor — is a regression.
//!
//! Aggregate (parallel fan-out) rows are only compared when the host can
//! express them: rows whose thread count exceeds this host's cores, or
//! whose speedup was measured on a host with a different core count, are
//! skipped and listed — see the host-portability notes in
//! [`pif_bench::report`].
//!
//! Exit status: `0` trend ok, `1` regression detected, `2` usage or
//! parse error. CI treats 1 as a failed gate and uploads both artifacts.

use pif_bench::report::{compare_trend, TREND_TOLERANCE};
use pif_lab::json::Json;

fn load(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("perftrend: cannot read {path}: {e}");
        std::process::exit(2);
    });
    Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("perftrend: {path} does not parse: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [committed_path, fresh_path] = args.as_slice() else {
        eprintln!("usage: perftrend <committed.json> <fresh.json>");
        std::process::exit(2);
    };
    let committed = load(committed_path);
    let fresh = load(fresh_path);
    let report = compare_trend(&committed, &fresh).unwrap_or_else(|e| {
        eprintln!("perftrend: {e}");
        std::process::exit(2);
    });
    println!(
        "perftrend: {} rows compared, machine calibration {:.3}x, tolerance {:.0}%",
        report.rows_compared,
        report.calibration,
        TREND_TOLERANCE * 100.0
    );
    for s in &report.skipped {
        println!("perftrend: skipped {s}");
    }
    if report.passed() {
        println!("perftrend: trend ok — no row regressed past the calibrated floor");
        return;
    }
    eprintln!(
        "perftrend: REGRESSION — {} row(s) below the calibrated floor:",
        report.regressions.len()
    );
    for r in &report.regressions {
        eprintln!("  {r}");
    }
    std::process::exit(1);
}
