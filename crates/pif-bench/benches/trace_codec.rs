//! Trace codec benchmarks: v1 (fixed-width) vs v2 (chunked delta/varint)
//! encode/decode throughput, plus a one-shot bytes-per-instruction report.
//!
//! Run with: `cargo bench -p pif-bench --bench trace_codec`

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use pif_trace::{encode_v2, scan_info, TraceReader};
use pif_workloads::io::{decode_trace, encode_trace};
use pif_workloads::{Trace, WorkloadProfile};

const INSTRS: usize = 100_000;

fn fixture() -> Trace {
    WorkloadProfile::oltp_db2().scaled(0.2).generate(INSTRS)
}

/// Prints the size comparison the tentpole targets (≥2× smaller on
/// OLTP-DB2); runs once, outside measurement.
fn report_sizes(trace: &Trace) {
    let v1 = encode_trace(trace);
    let v2 = encode_v2(trace.name(), trace.instrs());
    let n = trace.len() as f64;
    eprintln!(
        "trace_codec: {} × {} instrs — v1 {:.2} B/instr, v2 {:.2} B/instr, ratio {:.2}x",
        trace.name(),
        trace.len(),
        v1.len() as f64 / n,
        v2.len() as f64 / n,
        v1.len() as f64 / v2.len() as f64,
    );
}

fn bench_encode(c: &mut Criterion) {
    let trace = fixture();
    report_sizes(&trace);
    let mut g = c.benchmark_group("trace_encode");
    g.throughput(Throughput::Elements(INSTRS as u64));
    g.bench_function("v1", |b| {
        b.iter(|| black_box(encode_trace(black_box(&trace))))
    });
    g.bench_function("v2", |b| {
        b.iter(|| black_box(encode_v2(trace.name(), black_box(trace.instrs()))))
    });
    g.finish();
}

fn bench_decode(c: &mut Criterion) {
    let trace = fixture();
    let v1 = encode_trace(&trace);
    let v2 = encode_v2(trace.name(), trace.instrs());
    let mut g = c.benchmark_group("trace_decode");
    g.throughput(Throughput::Elements(INSTRS as u64));
    g.bench_function("v1", |b| b.iter(|| decode_trace(black_box(&v1)).unwrap()));
    g.bench_function("v2", |b| {
        b.iter(|| pif_trace::decode(black_box(&v2)).unwrap())
    });
    g.bench_function("v2_streaming", |b| {
        b.iter(|| {
            let reader = TraceReader::open(black_box(v2.as_slice())).unwrap();
            let mut n = 0u64;
            for r in reader {
                r.unwrap();
                n += 1;
            }
            black_box(n)
        })
    });
    g.finish();
}

fn bench_scan(c: &mut Criterion) {
    let trace = fixture();
    let v2 = encode_v2(trace.name(), trace.instrs());
    let mut g = c.benchmark_group("trace_scan");
    g.throughput(Throughput::Bytes(v2.len() as u64));
    g.bench_function("v2_info_skip_chunks", |b| {
        b.iter(|| scan_info(black_box(v2.as_slice())).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_encode, bench_decode, bench_scan);
criterion_main!(benches);
