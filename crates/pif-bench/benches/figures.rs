//! One benchmark per paper table/figure: times the experiment runner that
//! regenerates each artifact (at a reduced scale — use the
//! `pif-experiments` binaries with `PIF_SCALE=paper` for full-scale
//! numbers), plus ablation benches for the design choices DESIGN.md calls
//! out.
//!
//! Run with: `cargo bench -p pif-bench --bench figures`

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use pif_bench::{bench_scale, bench_trace};
use pif_core::{Pif, PifConfig};
use pif_experiments::{fig10, fig2, fig3, fig7, fig8, fig9, table1};
use pif_sim::{Engine, EngineConfig, RunOptions};

fn bench_figures(c: &mut Criterion) {
    let scale = bench_scale();
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);

    g.bench_function("table1", |b| {
        b.iter(|| {
            black_box(table1::system_table(&EngineConfig::paper_default()).to_string());
            black_box(table1::pif_table(&PifConfig::paper_default()).to_string());
            black_box(table1::workload_table().to_string())
        })
    });
    g.bench_function("fig2_stream_coverage", |b| {
        b.iter(|| black_box(fig2::run(&scale)))
    });
    g.bench_function("fig3_regions", |b| b.iter(|| black_box(fig3::run(&scale))));
    g.bench_function("fig7_jump_distance", |b| {
        b.iter(|| black_box(fig7::run(&scale)))
    });
    g.bench_function("fig8_offsets", |b| {
        b.iter(|| black_box(fig8::run_offsets(&scale)))
    });
    g.bench_function("fig9_history_sweep", |b| {
        b.iter(|| black_box(fig9::run_history_sweep(&scale)))
    });
    g.bench_function("fig10_competitive", |b| {
        b.iter(|| black_box(fig10::run(&scale)))
    });
    g.finish();
}

/// Ablations: the design choices the paper justifies in §4-§5, measured
/// as engine runs with the feature weakened.
fn bench_ablations(c: &mut Criterion) {
    let trace = bench_trace(120_000);
    let engine = Engine::new(EngineConfig::paper_default());
    let mut g = c.benchmark_group("ablation");
    g.sample_size(10);

    g.bench_function("pif_paper_design", |b| {
        b.iter(|| {
            black_box(engine.run(
                trace.iter().copied(),
                Pif::new(PifConfig::paper_default()),
                RunOptions::new(),
            ))
        })
    });
    g.bench_function("pif_no_temporal_compactor", |b| {
        let mut cfg = PifConfig::paper_default();
        cfg.temporal_entries = 1; // effectively disabled
        b.iter(|| black_box(engine.run(trace.iter().copied(), Pif::new(cfg), RunOptions::new())))
    });
    g.bench_function("pif_single_block_regions", |b| {
        let mut cfg = PifConfig::paper_default();
        cfg.geometry = pif_types::RegionGeometry::new(0, 0).unwrap();
        b.iter(|| black_box(engine.run(trace.iter().copied(), Pif::new(cfg), RunOptions::new())))
    });
    g.bench_function("pif_tiny_history", |b| {
        let mut cfg = PifConfig::paper_default();
        cfg.history_capacity = 1024;
        b.iter(|| black_box(engine.run(trace.iter().copied(), Pif::new(cfg), RunOptions::new())))
    });
    g.bench_function("pif_one_sab", |b| {
        let mut cfg = PifConfig::paper_default();
        cfg.sab_count = 1;
        b.iter(|| black_box(engine.run(trace.iter().copied(), Pif::new(cfg), RunOptions::new())))
    });
    g.finish();
}

criterion_group!(benches, bench_figures, bench_ablations);
criterion_main!(benches);
