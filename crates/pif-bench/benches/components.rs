//! Microbenchmarks of the simulator and PIF hardware structures.
//!
//! Run with: `cargo bench -p pif-bench --bench components`

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use pif_bench::bench_trace;
use pif_core::{HistoryBuffer, Pif, PifConfig, SabPool, SpatialCompactor, TemporalCompactor};
use pif_sim::bpred::{DirectionPredictor, HybridPredictor};
use pif_sim::cache::{InstructionCache, Lru, SetAssocCache};
use pif_sim::frontend::FrontEnd;
use pif_sim::{Engine, EngineConfig, FrontendConfig, ICacheConfig, NoPrefetcher, RunOptions};
use pif_types::{Address, BlockAddr, RegionGeometry, SpatialRegionRecord};

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.throughput(Throughput::Elements(1));

    g.bench_function("set_assoc_hit", |b| {
        let mut cache: SetAssocCache<Lru, ()> = SetAssocCache::new(512, 2).unwrap();
        cache.insert(BlockAddr::from_number(42), ());
        b.iter(|| black_box(cache.access(black_box(BlockAddr::from_number(42)))).is_some())
    });

    g.bench_function("set_assoc_miss", |b| {
        // Warm cache, then access blocks that always miss (disjoint tag
        // space): measures the full-set tag scan without fills.
        let mut cache: SetAssocCache<Lru, ()> = SetAssocCache::new(512, 2).unwrap();
        for n in 0..1024u64 {
            cache.insert(BlockAddr::from_number(n), ());
        }
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            black_box(cache.access(black_box(BlockAddr::from_number(1 << 20 | n & 511)))).is_none()
        })
    });

    g.bench_function("set_assoc_insert_evict", |b| {
        // Every insert conflicts in a full cache: fill + eviction path.
        let mut cache: SetAssocCache<Lru, ()> = SetAssocCache::new(512, 2).unwrap();
        for n in 0..1024u64 {
            cache.insert(BlockAddr::from_number(n), ());
        }
        let mut n = 1024u64;
        b.iter(|| {
            n += 1;
            black_box(cache.insert(BlockAddr::from_number(n), ()))
        })
    });

    g.bench_function("set_assoc_probe_16way", |b| {
        // The L2 geometry: 16-way tag scan, non-perturbing.
        let mut cache: SetAssocCache<Lru, ()> = SetAssocCache::new(512, 16).unwrap();
        for n in 0..8192u64 {
            cache.insert(BlockAddr::from_number(n), ());
        }
        let mut n = 0u64;
        b.iter(|| {
            n = (n + 1) % 8192;
            black_box(cache.probe(black_box(BlockAddr::from_number(n)))).is_some()
        })
    });

    g.bench_function("icache_demand_cycle", |b| {
        let mut ic = InstructionCache::new(ICacheConfig::paper_default()).unwrap();
        let mut n = 0u64;
        b.iter(|| {
            n = (n + 1) % 4096;
            black_box(ic.demand_access(BlockAddr::from_number(n)))
        })
    });
    g.finish();
}

fn bench_bpred(c: &mut Criterion) {
    let mut g = c.benchmark_group("bpred");
    g.throughput(Throughput::Elements(1));
    g.bench_function("hybrid_predict_update", |b| {
        let mut p = HybridPredictor::paper_default();
        let mut i = 0u64;
        b.iter(|| {
            i += 4;
            let pc = Address::new(i % 65536);
            let taken = !i.is_multiple_of(3);
            let pred = p.predict(pc);
            p.update(pc, taken);
            black_box(pred)
        })
    });
    g.finish();
}

fn bench_compactors(c: &mut Criterion) {
    let mut g = c.benchmark_group("compactor");
    g.throughput(Throughput::Elements(1));

    g.bench_function("spatial_observe", |b| {
        let mut sc = SpatialCompactor::new(RegionGeometry::paper_default());
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            // Walk sequentially: region emission every 6 blocks.
            black_box(sc.observe(BlockAddr::from_number(n / 4), true))
        })
    });

    g.bench_function("temporal_filter", |b| {
        let mut tc = TemporalCompactor::new(4);
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            let rec = SpatialRegionRecord::new(BlockAddr::from_number(n % 8 * 100));
            black_box(tc.filter(pif_core::spatial_tagged(rec, true)))
        })
    });
    g.finish();
}

fn bench_history_and_sab(c: &mut Criterion) {
    let mut g = c.benchmark_group("history");
    g.throughput(Throughput::Elements(1));

    g.bench_function("history_append", |b| {
        let mut h = HistoryBuffer::new(32 * 1024);
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            black_box(h.append(SpatialRegionRecord::new(BlockAddr::from_number(n)), true))
        })
    });

    g.bench_function("sab_advance", |b| {
        let mut h = HistoryBuffer::new(32 * 1024);
        for n in 0..1024u64 {
            h.append(
                SpatialRegionRecord::new(BlockAddr::from_number(n * 10)),
                true,
            );
        }
        let mut pool = SabPool::new(4, 7);
        let mut records = Vec::new();
        pool.allocate(0, 0, 0, RegionGeometry::paper_default(), &h, &mut records);
        let mut n = 0u64;
        b.iter(|| {
            n = (n + 1) % 1000;
            black_box(pool.advance(
                0,
                BlockAddr::from_number(n * 10),
                RegionGeometry::paper_default(),
                &h,
                &mut records,
            ))
        })
    });

    g.bench_function("sab_allocate", |b| {
        let mut h = HistoryBuffer::new(32 * 1024);
        for n in 0..1024u64 {
            h.append(
                SpatialRegionRecord::new(BlockAddr::from_number(n * 10)),
                true,
            );
        }
        let mut pool = SabPool::new(4, 7);
        let mut records = Vec::new();
        let mut n = 0u64;
        b.iter(|| {
            n = (n + 1) % 1000;
            black_box(pool.allocate(0, n, 0, RegionGeometry::paper_default(), &h, &mut records))
        })
    });
    g.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let trace = bench_trace(100_000);
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    g.throughput(Throughput::Elements(trace.len() as u64));

    g.bench_function("frontend_100k", |b| {
        b.iter(|| {
            let mut fe = FrontEnd::new(FrontendConfig::paper_default());
            let mut count = 0u64;
            for &instr in &trace {
                fe.step(instr, |_| count += 1);
            }
            black_box(count)
        })
    });

    g.bench_function("engine_noprefetch_100k", |b| {
        let engine = Engine::new(EngineConfig::paper_default());
        b.iter(|| black_box(engine.run(trace.iter().copied(), NoPrefetcher, RunOptions::new())))
    });

    g.bench_function("engine_pif_100k", |b| {
        let engine = Engine::new(EngineConfig::paper_default());
        b.iter(|| {
            black_box(engine.run(
                trace.iter().copied(),
                Pif::new(PifConfig::paper_default()),
                RunOptions::new(),
            ))
        })
    });

    g.bench_function("workload_generate_100k", |b| {
        b.iter(|| black_box(pif_bench::bench_trace(100_000)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_cache,
    bench_bpred,
    bench_compactors,
    bench_history_and_sab,
    bench_pipeline
);
criterion_main!(benches);
