//! Web-server scenario: the workload class whose instruction stream
//! fragments worst (paper §2.1) — compare every prefetcher on it.
//!
//! Run with: `cargo run --release --example web_server_shootout`

use pif_repro::prelude::*;

fn main() {
    let trace = WorkloadProfile::web_apache()
        .scaled(0.5)
        .generate(2_000_000);
    let engine = Engine::new(EngineConfig::paper_default());
    let warmup = 600_000;

    let base = engine.run(
        trace.instrs().iter().copied(),
        NoPrefetcher,
        RunOptions::new().warmup(warmup),
    );
    println!(
        "Web-Apache baseline: {:.1}% hit rate, {:.1}% fetch-stall cycles\n",
        base.fetch.hit_rate() * 100.0,
        base.timing.fetch_stall_fraction() * 100.0
    );
    println!(
        "{:<16} {:>9} {:>9} {:>9} {:>11} {:>10}",
        "prefetcher", "coverage", "accuracy", "speedup", "hit rate", "stalls"
    );

    let report = |r: pif_sim::RunReport| {
        println!(
            "{:<16} {:>8.1}% {:>8.1}% {:>8.2}x {:>10.1}% {:>9.1}%",
            r.prefetcher,
            r.miss_coverage() * 100.0,
            r.prefetch.accuracy() * 100.0,
            r.speedup_over(&base),
            r.fetch.hit_rate() * 100.0,
            r.timing.fetch_stall_fraction() * 100.0,
        );
    };

    report(engine.run(
        trace.instrs().iter().copied(),
        NextLinePrefetcher::aggressive(),
        RunOptions::new().warmup(warmup),
    ));
    report(engine.run(
        trace.instrs().iter().copied(),
        DiscontinuityPrefetcher::paper_scale(),
        RunOptions::new().warmup(warmup),
    ));
    report(engine.run(
        trace.instrs().iter().copied(),
        Tifs::unbounded(),
        RunOptions::new().warmup(warmup),
    ));
    report(engine.run(
        trace.instrs().iter().copied(),
        Pif::new(PifConfig::paper_default()),
        RunOptions::new().warmup(warmup),
    ));
    report(engine.run(
        trace.instrs().iter().copied(),
        PerfectICache,
        RunOptions::new().warmup(warmup),
    ));

    println!("\nExpected: Next-Line < Discontinuity < TIFS < PIF, with PIF close to Perfect —");
    println!("the paper's Figure 10 ordering, reproduced on the synthetic Apache profile.");
}
