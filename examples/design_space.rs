//! PIF design-space exploration: sweep the structures the paper sizes in
//! §5 (history capacity, SAB count/window, spatial region geometry) and
//! watch coverage respond — an ablation companion to Figures 8 and 9.
//!
//! Run with: `cargo run --release --example design_space`

use pif_repro::pif::analysis::PifAnalyzer;
use pif_repro::prelude::*;
use pif_repro::types::RegionGeometry;

fn main() {
    let trace = WorkloadProfile::oltp_oracle()
        .scaled(0.5)
        .generate(2_000_000);
    let engine = Engine::new(EngineConfig::paper_default());
    let warmup = 600_000;

    println!("== History buffer capacity (engine, miss coverage) ==");
    for capacity in [1024usize, 4 * 1024, 16 * 1024, 32 * 1024, 128 * 1024] {
        let mut cfg = PifConfig::paper_default();
        cfg.history_capacity = capacity;
        let r = engine.run(
            trace.instrs().iter().copied(),
            Pif::new(cfg),
            RunOptions::new().warmup(warmup),
        );
        println!(
            "  {:>6} regions -> coverage {:>5.1}%  speedup-relevant hit rate {:>5.1}%",
            capacity,
            r.miss_coverage() * 100.0,
            r.fetch.hit_rate() * 100.0
        );
    }

    println!("\n== Stream address buffers (count x window) ==");
    for (count, window) in [(1, 7), (2, 7), (4, 3), (4, 7), (4, 12), (8, 7)] {
        let mut cfg = PifConfig::paper_default();
        cfg.sab_count = count;
        cfg.sab_window = window;
        let r = engine.run(
            trace.instrs().iter().copied(),
            Pif::new(cfg),
            RunOptions::new().warmup(warmup),
        );
        println!(
            "  {count} SABs x {window:>2} regions -> coverage {:>5.1}%",
            r.miss_coverage() * 100.0
        );
    }

    println!("\n== Spatial region geometry (analyzer, predictor coverage) ==");
    for (prec, succ) in [(0, 0), (0, 3), (2, 1), (2, 5), (4, 11)] {
        let mut cfg = PifConfig::paper_default();
        cfg.geometry = RegionGeometry::new(prec, succ).expect("valid geometry");
        let report = PifAnalyzer::new(cfg, engine.config().icache).analyze(trace.instrs(), warmup);
        println!(
            "  {prec} preceding + trigger + {succ:>2} succeeding -> predictor coverage {:>5.1}%",
            report.overall_predictor_coverage() * 100.0
        );
    }

    println!("\nThe paper's chosen point — 32K regions, 4 SABs x 7, (2,5) regions —");
    println!("sits where each curve saturates (§5.2, §5.4, footnote 2).");
}
