//! Quickstart: generate a server-like instruction trace, attach the PIF
//! prefetcher, and compare it against a no-prefetch baseline.
//!
//! Run with: `cargo run --release --example quickstart`

use pif_repro::prelude::*;

fn main() {
    // 1. Synthesize a workload. OLTP-DB2 mirrors the paper's TPC-C on DB2
    //    profile; `scaled` shrinks the code footprint for a fast demo.
    let trace = WorkloadProfile::oltp_db2().scaled(0.4).generate(1_000_000);
    let stats = trace.stats();
    println!(
        "trace: {} instructions, {:.2} MB code footprint, {:.1}% branches, {:.1}% interrupt-level",
        stats.instructions,
        stats.footprint_bytes() as f64 / (1024.0 * 1024.0),
        stats.branches as f64 / stats.instructions as f64 * 100.0,
        stats.tl1_fraction() * 100.0,
    );

    // 2. Simulate with the paper's Table I system configuration.
    let engine = Engine::new(EngineConfig::paper_default());
    let warmup = 300_000;

    let base = engine.run(
        trace.instrs().iter().copied(),
        NoPrefetcher,
        RunOptions::new().warmup(warmup),
    );
    println!(
        "\nbaseline:  {:.1}% L1-I hit rate, {:.1}% of cycles stalled on fetch, UIPC {:.3}",
        base.fetch.hit_rate() * 100.0,
        base.timing.fetch_stall_fraction() * 100.0,
        base.timing.uipc(),
    );

    // 3. Attach Proactive Instruction Fetch.
    let pif = engine.run(
        trace.instrs().iter().copied(),
        Pif::new(PifConfig::paper_default()),
        RunOptions::new().warmup(warmup),
    );
    println!(
        "with PIF:  {:.1}% L1-I hit rate, {:.1}% of would-be misses covered, UIPC {:.3}",
        pif.fetch.hit_rate() * 100.0,
        pif.miss_coverage() * 100.0,
        pif.timing.uipc(),
    );
    println!(
        "\nPIF speedup over baseline: {:.2}x  (prefetches issued: {}, accuracy: {:.1}%)",
        pif.speedup_over(&base),
        pif.prefetch.issued,
        pif.prefetch.accuracy() * 100.0,
    );
}
