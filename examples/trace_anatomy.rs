//! Trace anatomy: dissect a synthetic workload the way the paper's §2-§3
//! characterization does — stream predictability by observation point,
//! spatial-region density, and where the misses come from.
//!
//! Run with: `cargo run --release --example trace_anatomy [workload]`

use pif_repro::pif::analysis::analyze_regions;
use pif_repro::prelude::*;
use pif_repro::sim::predictor_eval::{evaluate_stream_coverage_warmup, TemporalPredictorConfig};
use pif_repro::types::RegionGeometry;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "OLTP-Oracle".to_string());
    let profile = WorkloadProfile::all()
        .into_iter()
        .find(|w| w.name() == name)
        .unwrap_or_else(|| {
            eprintln!("unknown workload {name}; using OLTP-Oracle");
            WorkloadProfile::oltp_oracle()
        });

    let trace = profile.scaled(0.5).generate(2_000_000);
    let stats = trace.stats();
    println!("== {} ==", trace.name());
    println!(
        "instructions: {}   footprint: {:.2} MB   branches: {:.1}%   TL1: {:.2}%",
        stats.instructions,
        stats.footprint_bytes() as f64 / (1024.0 * 1024.0),
        stats.branches as f64 / stats.instructions as f64 * 100.0,
        stats.tl1_fraction() * 100.0
    );

    // Stream predictability at the four observation points (paper Fig. 2).
    let coverage = evaluate_stream_coverage_warmup(
        &EngineConfig::paper_default(),
        TemporalPredictorConfig::default(),
        trace.instrs(),
        600_000,
    );
    println!("\ntemporal-stream predictability of L1-I misses (Fig. 2):");
    println!(
        "  miss stream:       {:>5.1}%  <- filtered & fragmented by the cache",
        coverage.miss * 100.0
    );
    println!(
        "  access stream:     {:>5.1}%  <- wrong-path noise included",
        coverage.access * 100.0
    );
    println!(
        "  retire stream:     {:>5.1}%  <- correct path only",
        coverage.retire * 100.0
    );
    println!(
        "  retire, per-trap:  {:>5.1}%  <- PIF's recording point",
        coverage.retire_sep * 100.0
    );

    // Spatial regions (paper Fig. 3).
    let regions = analyze_regions(
        trace.instrs(),
        RegionGeometry::new(8, 23).expect("32-block"),
    );
    println!("\nspatial regions (32-block probe, Fig. 3):");
    println!(
        "  regions observed: {}   multi-block: {:.1}%   discontinuous: {:.1}%",
        regions.total_regions,
        (1.0 - regions.density_fraction(1, 1)) * 100.0,
        (1.0 - regions.runs_fraction(1, 1)) * 100.0
    );

    // Where do the cycles go (baseline vs PIF)?
    let engine = Engine::new(EngineConfig::paper_default());
    let base = engine.run(
        trace.instrs().iter().copied(),
        NoPrefetcher,
        RunOptions::new().warmup(600_000),
    );
    let pif = engine.run(
        trace.instrs().iter().copied(),
        Pif::new(PifConfig::paper_default()),
        RunOptions::new().warmup(600_000),
    );
    println!("\ncycle accounting (per 1K instructions):");
    for (name, r) in [("baseline", &base), ("PIF", &pif)] {
        let k = r.timing.instructions as f64 / 1000.0;
        println!(
            "  {name:<9} base {:>6.1}  fetch-stall {:>6.1}  mispredict {:>5.1}  (UIPC {:.3})",
            r.timing.base_cycles as f64 / k,
            r.timing.fetch_stall_cycles as f64 / k,
            r.timing.mispredict_cycles as f64 / k,
            r.timing.uipc()
        );
    }
    println!("\nPIF speedup: {:.2}x", pif.speedup_over(&base));
}
