//! # pif-repro — Proactive Instruction Fetch, reproduced
//!
//! A production-quality Rust reproduction of **"Proactive Instruction
//! Fetch"** (Ferdman, Kaynak, Falsafi — MICRO 2011): the PIF instruction
//! prefetcher, the trace-driven microarchitecture substrate it is evaluated
//! on, synthetic server workloads standing in for the paper's commercial
//! traces, the paper's baselines (next-line, TIFS, perfect L1-I), and a
//! harness regenerating every table and figure of the evaluation.
//!
//! This facade crate re-exports the member crates under stable names:
//!
//! * [`types`] — addresses, blocks, spatial regions, trace records.
//! * [`trace`] — streaming, compressed trace files (v2) and v1 compat.
//! * [`sim`] — caches, branch predictors, the front-end model, the
//!   simulation engine and timing model.
//! * [`workloads`] — the six synthetic server workload profiles.
//! * [`bintrace`] — real-ELF trace frontend: loader, CFG recovery, and
//!   the seeded walker behind `tracectl record-elf`.
//! * [`pif`] — the Proactive Instruction Fetch prefetcher itself.
//! * [`baselines`] — next-line, TIFS, discontinuity, perfect cache.
//! * [`experiments`] — per-figure experiment runners.
//! * [`lab`] — declarative sweep orchestration and the `piflab` CLI.
//!
//! # Quickstart
//!
//! ```
//! use pif_repro::prelude::*;
//!
//! // Generate a small OLTP-like trace, run it through the engine with a
//! // PIF prefetcher attached, and inspect coverage.
//! let trace = WorkloadProfile::oltp_db2().scaled(0.02).generate(50_000);
//! let config = EngineConfig::paper_default();
//! let pif = Pif::new(PifConfig::default());
//! let report = Engine::new(config).run(trace.instrs().iter().copied(), pif, RunOptions::new());
//! assert!(report.fetch.demand_accesses > 0);
//! ```

pub use pif_baselines as baselines;
pub use pif_bintrace as bintrace;
pub use pif_core as pif;
pub use pif_experiments as experiments;
pub use pif_lab as lab;
pub use pif_sim as sim;
pub use pif_trace as trace;
pub use pif_types as types;
pub use pif_workloads as workloads;

/// Convenience re-exports for the common entry points.
pub mod prelude {
    pub use pif_baselines::{DiscontinuityPrefetcher, NextLinePrefetcher, PerfectICache, Tifs};
    pub use pif_core::{Pif, PifConfig};
    pub use pif_sim::{Engine, EngineConfig, NoPrefetcher, Prefetcher, RunOptions, RunReport};
    pub use pif_trace::{TraceReader, TraceWriter};
    pub use pif_types::{
        Address, BlockAddr, InstrSource, RegionGeometry, RetiredInstr, SpatialRegionRecord,
        TrapLevel,
    };
    pub use pif_workloads::{Trace, WorkloadProfile};
}
