//! Minimal stand-in for `rand` 0.8 used by this workspace's offline build.
//!
//! Implements exactly the surface the workload generators and front-end
//! model consume: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::{gen, gen_range, gen_bool}`](Rng). The generator is a
//! SplitMix64-seeded xoshiro256++ — deterministic for a given seed, which
//! is the property the tier-1 determinism tests rely on (the stream may
//! differ from upstream `rand`'s `SmallRng` in sampling details, which is
//! fine: all seeds in this repository are internal).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// Types constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a `u64` seed via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its full "standard" distribution
    /// (`f64` in `[0, 1)`, integers uniform over their domain).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Distributions samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the standard distribution for `Self`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u8 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the high 53 bits.
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty => $u:ty),+ $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                self.start.wrapping_add((rng.next_u64() as $u % span) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $u).wrapping_sub(lo as $u).wrapping_add(1);
                if span == 0 {
                    // Full domain: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() as $u % span) as $t)
            }
        }
    )+};
}

impl_int_sample_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64,
);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++ core, the
    /// same algorithm upstream `rand` 0.8 uses for `SmallRng` on 64-bit
    /// targets), seeded by SplitMix64 expansion like `rand_core`'s
    /// default `seed_from_u64`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        state: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut splitmix = seed;
            let mut state = [0u64; 4];
            for word in &mut state {
                splitmix = splitmix.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = splitmix;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                *word = z ^ (z >> 31);
            }
            Self { state }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let x = rng.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
        assert_eq!((0..100).filter(|_| rng.gen_bool(0.0)).count(), 0);
    }
}
