//! Minimal stand-in for `proptest` used by this workspace's offline
//! build.
//!
//! Supports the property tests this repository writes: the [`proptest!`]
//! macro over `pattern in strategy` parameters, integer-range and
//! inclusive-range strategies, tuples of strategies, `prop_map`,
//! [`arbitrary::any`], [`collection::vec`], [`option::of`],
//! [`bool::ANY`], and simple `[class]{m,n}` string-pattern strategies.
//!
//! Each property runs a fixed number of deterministic cases (derived
//! from the test's module path and name, so runs are reproducible;
//! override the count with `PROPTEST_CASES`). Failures are reported by
//! ordinary `assert!` panics — there is no shrinking.

#![forbid(unsafe_code)]

/// Deterministic random source for test-case generation.
pub mod test_runner {
    /// Per-test deterministic generator (xorshift64* seeded by FNV-1a of
    /// the test's full name).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Builds the generator for the named test; the same name always
        /// produces the same case sequence.
        pub fn deterministic(name: &str) -> Self {
            let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
            for byte in name.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self { state: hash.max(1) }
        }

        /// Returns the next random word.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }
    }

    /// Number of cases each property runs (`PROPTEST_CASES`, default 64).
    pub fn cases() -> usize {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }
}

/// The [`Strategy`](strategy::Strategy) trait and built-in strategies.
pub mod strategy {
    use std::ops::{Range, RangeInclusive};

    use crate::test_runner::TestRng;

    /// A recipe for generating values of [`Strategy::Value`].
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `map`.
        fn prop_map<O, F>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, map }
        }
    }

    /// Strategy adapter returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),+ $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = u128::from(rng.next_u64()) % span;
                    (self.start as i128 + offset as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let offset = u128::from(rng.next_u64()) % span;
                    (lo as i128 + offset as i128) as $t
                }
            }
        )+};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// String-pattern strategy: supports the `[class]{m,n}` subset of
    /// regex syntax (character classes with `a-z` ranges); any other
    /// pattern falls back to short alphanumeric strings.
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        const FALLBACK: &str = "abcdefghijklmnopqrstuvwxyz0123456789";
        let (alphabet, min, max) =
            parse_class_repeat(pattern).unwrap_or_else(|| (FALLBACK.chars().collect(), 0, 16));
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
            .collect()
    }

    /// Parses `[class]{m,n}` into (alphabet, m, n); `None` if the pattern
    /// has any other shape.
    fn parse_class_repeat(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pattern.strip_prefix('[')?;
        let (class, rest) = rest.split_once(']')?;
        let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
        let (min, max) = counts.split_once(',')?;
        let (min, max) = (min.trim().parse().ok()?, max.trim().parse().ok()?);
        if min > max {
            return None;
        }

        let mut alphabet = Vec::new();
        let mut chars = class.chars().peekable();
        while let Some(c) = chars.next() {
            if chars.peek() == Some(&'-') {
                let mut lookahead = chars.clone();
                lookahead.next();
                if let Some(&end) = lookahead.peek() {
                    // `a-z` range (a trailing `-` stays literal).
                    chars = lookahead;
                    chars.next();
                    alphabet.extend((c..=end).filter(char::is_ascii));
                    continue;
                }
            }
            alphabet.push(c);
        }
        if alphabet.is_empty() {
            None
        } else {
            Some((alphabet, min, max))
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn class_repeat_parses() {
            let (alphabet, min, max) = parse_class_repeat("[a-zA-Z0-9_-]{0,24}").unwrap();
            assert_eq!((min, max), (0, 24));
            for c in ['a', 'z', 'A', 'Z', '0', '9', '_', '-'] {
                assert!(alphabet.contains(&c), "missing {c:?}");
            }
            assert!(!alphabet.contains(&'['));
        }

        #[test]
        fn string_strategy_respects_pattern() {
            let mut rng = TestRng::deterministic("string_strategy");
            for _ in 0..200 {
                let s = "[a-z]{1,4}".generate(&mut rng);
                assert!((1..=4).contains(&s.len()), "bad length: {s:?}");
                assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            }
        }

        #[test]
        fn ranges_and_maps_generate_in_bounds() {
            let mut rng = TestRng::deterministic("ranges");
            let doubled = (0u8..=8).prop_map(|v| u32::from(v) * 2);
            for _ in 0..200 {
                assert!((-20i64..20).generate(&mut rng) < 20);
                assert!(doubled.generate(&mut rng) <= 16);
                let (a, b) = (0u64..5, 1usize..=3).generate(&mut rng);
                assert!(a < 5 && (1..=3).contains(&b));
            }
        }
    }
}

/// `any::<T>()` strategies for types with a natural full-domain
/// distribution.
pub mod arbitrary {
    use std::marker::PhantomData;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types generatable over their full domain by [`any`].
    pub trait Arbitrary {
        /// Draws one value uniformly from the type's domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),+ $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )+};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use std::ops::Range;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vectors of `element` values with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(!size.is_empty(), "empty vec size range");
        VecStrategy { element, size }
    }
}

/// `Option` strategies.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy returned by [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64() & 1 == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    /// `None` or `Some(inner)` with equal probability.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

/// `bool` strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The type of [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Fair-coin strategy for `bool`.
    pub const ANY: BoolAny = BoolAny;
}

/// The usual imports for property tests.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __strategies = ($($s,)+);
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..$crate::test_runner::cases() {
                    let ($($p,)+) =
                        $crate::strategy::Strategy::generate(&__strategies, &mut __rng);
                    $body
                }
            }
        )+
    };
}

/// Property-test assertion; forwards to `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Property-test equality assertion; forwards to `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Property-test inequality assertion; forwards to `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

#[cfg(test)]
mod macro_tests {
    use crate::prelude::*;

    proptest! {
        /// The macro wires patterns, strategies, and assertions together.
        #[test]
        fn sums_stay_in_bounds(
            a in 0u32..100,
            b in 0u32..=50,
            flip in crate::bool::ANY,
            xs in crate::collection::vec(any::<u8>(), 0..8),
        ) {
            prop_assert!(a < 100);
            prop_assert!(b <= 50);
            prop_assert!(xs.len() < 8);
            let total = u64::from(a) + u64::from(b);
            prop_assert!(total <= 149);
            prop_assert_eq!(flip as u8 <= 1, true);
        }

        #[test]
        fn tuple_patterns_destructure((x, y) in (0i64..10, crate::option::of(0u8..3))) {
            prop_assert!(x < 10);
            if let Some(v) = y {
                prop_assert!(v < 3);
            }
        }
    }
}
