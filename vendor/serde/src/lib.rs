//! Minimal stand-in for `serde` used by this workspace's offline build.
//!
//! Provides the `Serialize`/`Deserialize` trait names and re-exports the
//! no-op derive macros. The repository never serializes through serde's
//! data model — types are merely annotated — so marker traits suffice.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
