//! Minimal stand-in for `parking_lot` used by this workspace's offline
//! build: `Mutex` and `RwLock` with parking_lot's panic-free guard API,
//! implemented over `std::sync`. Poisoning is transparently ignored
//! (parking_lot has no poisoning), which preserves its semantics.

#![forbid(unsafe_code)]

use std::sync::PoisonError;

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose guards never report poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn shared_across_threads() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(m.into_inner(), 400);
    }
}
