//! Minimal stand-in for `criterion` used by this workspace's offline
//! build. Supports the suite layout the `pif-bench` benches use:
//! benchmark groups with `throughput`/`sample_size`, `Bencher::iter`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Behavior:
//!
//! * `cargo bench -- --test` runs every benchmark body exactly once and
//!   reports nothing — the CI smoke mode.
//! * `cargo bench` calibrates each benchmark to a short measurement
//!   window and prints mean wall-clock time per iteration. No statistics
//!   beyond the mean, no HTML reports.
//! * A positional CLI argument filters benchmarks by substring match on
//!   `group/name`, mirroring criterion's filter argument.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement window per benchmark in bench mode.
const MEASURE_WINDOW: Duration = Duration::from_millis(200);

/// Throughput annotation for a benchmark group (accepted, echoed in
/// reports as elements/bytes per second).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Iterations process this many logical elements each.
    Elements(u64),
    /// Iterations process this many bytes each.
    Bytes(u64),
}

/// Top-level benchmark driver; one per bench binary.
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
    ran: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                // Flags cargo/criterion pass that the shim accepts and ignores.
                "--bench" | "--profile-time" | "--noplot" | "--quiet" | "-n" => {}
                other if other.starts_with('-') => {}
                other => filter = Some(other.to_string()),
            }
        }
        Self {
            test_mode,
            filter,
            ran: 0,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Registers and runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(name, None, f);
        self
    }

    /// Prints the closing summary (invoked by `criterion_main!`).
    pub fn final_summary(&self) {
        if !self.test_mode {
            eprintln!("criterion-shim: {} benchmark(s) measured", self.ran);
        }
    }

    fn run_one<F>(&mut self, id: &str, throughput: Option<Throughput>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        if self.test_mode {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            self.ran += 1;
            return;
        }

        // Calibrate: grow the iteration count until one batch fills the
        // measurement window, then report the mean.
        let mut iters = 1u64;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= MEASURE_WINDOW || iters >= 1 << 24 {
                let per_iter = b.elapsed.as_nanos() as f64 / iters as f64;
                let rate = match throughput {
                    Some(Throughput::Elements(n)) | Some(Throughput::Bytes(n))
                        if per_iter > 0.0 =>
                    {
                        format!("  ({:.2e} /s)", n as f64 * 1e9 / per_iter)
                    }
                    _ => String::new(),
                };
                eprintln!("{id:<40} {per_iter:>12.1} ns/iter{rate}");
                break;
            }
            iters = iters.saturating_mul(
                ((MEASURE_WINDOW.as_nanos() as u64)
                    .checked_div(b.elapsed.as_nanos().max(1) as u64)
                    .unwrap_or(2))
                .clamp(2, 1 << 10),
            );
        }
        self.ran += 1;
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the shim sizes runs by wall clock.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Registers and runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, name);
        let throughput = self.throughput;
        self.criterion.run_one(&id, throughput, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Handle passed to each benchmark closure; call [`Bencher::iter`] with
/// the code under test.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this batch's iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Bundles benchmark functions into a group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generates `fn main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks_in_test_mode() {
        let mut c = Criterion {
            test_mode: true,
            filter: None,
            ran: 0,
        };
        let mut calls = 0;
        {
            let mut g = c.benchmark_group("g");
            g.throughput(Throughput::Elements(1)).sample_size(10);
            g.bench_function("a", |b| b.iter(|| calls += 1));
            g.bench_function("b", |b| b.iter(|| calls += 1));
            g.finish();
        }
        assert_eq!(calls, 2, "test mode runs each body exactly once");
        assert_eq!(c.ran, 2);
    }

    #[test]
    fn filter_skips_unmatched() {
        let mut c = Criterion {
            test_mode: true,
            filter: Some("keep".into()),
            ran: 0,
        };
        let mut ran_kept = false;
        c.bench_function("keep_this", |b| b.iter(|| ran_kept = true));
        c.bench_function("drop_this", |b| b.iter(|| panic!("filtered out")));
        assert!(ran_kept);
        assert_eq!(c.ran, 1);
    }
}
