//! Minimal stand-in for `bytes` used by this workspace's offline build.
//!
//! Implements the surface the trace codec consumes: [`BytesMut`] with
//! [`BufMut`] little-endian put methods and `freeze()`, [`Bytes`] as an
//! immutable byte container dereferencing to `[u8]`, and [`Buf`] for
//! `&[u8]` cursors with little-endian get methods.

#![forbid(unsafe_code)]

use std::ops::Deref;

/// An immutable contiguous byte buffer (plain `Vec<u8>` under the hood).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self(Vec::new())
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self(data.to_vec())
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self(v)
    }
}

/// A growable byte buffer that can be frozen into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self(Vec::new())
    }

    /// Creates an empty buffer with room for `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        Self(Vec::with_capacity(capacity))
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Converts the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Read cursor over a byte source; advances past consumed bytes.
///
/// The `get_*` methods panic if fewer bytes remain than requested,
/// matching upstream `bytes` semantics.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Skips `n` bytes.
    fn advance(&mut self, n: usize);

    /// Copies exactly `dst.len()` bytes into `dst` and advances.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        *self = &self[n..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "copy_to_slice past end of buffer");
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }
}

/// Write cursor appending to a byte sink.
pub trait BufMut {
    /// Appends all of `src`.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::{Buf, BufMut, BytesMut};

    #[test]
    fn put_then_get_round_trips() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_slice(b"head");
        buf.put_u8(7);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(u64::MAX - 1);
        let frozen = buf.freeze();

        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.remaining(), 4 + 1 + 4 + 8);
        let mut head = [0u8; 4];
        cursor.copy_to_slice(&mut head);
        assert_eq!(&head, b"head");
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_u64_le(), u64::MAX - 1);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    fn advance_skips_bytes() {
        let data = [1u8, 2, 3, 4];
        let mut cursor: &[u8] = &data;
        cursor.advance(2);
        assert_eq!(cursor.get_u8(), 3);
    }

    #[test]
    #[should_panic(expected = "past end")]
    fn get_past_end_panics() {
        let mut cursor: &[u8] = &[1, 2];
        let _ = cursor.get_u32_le();
    }
}
