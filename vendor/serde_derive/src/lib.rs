//! No-op stand-ins for `serde_derive`'s `Serialize`/`Deserialize`
//! derive macros.
//!
//! The repository only *annotates* types with the serde derives; nothing
//! actually serializes through serde's data model. These derives accept
//! the annotation (including `#[serde(...)]` helper attributes) and
//! expand to nothing, which is sufficient for an offline build.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
